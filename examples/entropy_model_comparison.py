#!/usr/bin/env python3
"""Classical vs multilevel entropy models for an eRO-TRNG (Figs. 2 and 3).

The paper's security message in one script, in two parts:

* Part 1 uses the paper-calibrated 103 MHz oscillators and compares, for a
  sweep of sampling dividers, the entropy per bit predicted by the classical
  (independence-assuming, Fig. 2) evaluation and by the refined multilevel
  (Fig. 3) model.

* Part 2 validates the comparison empirically on a scaled design whose
  oscillators carry much stronger noise.  There the accumulation lengths are
  small enough that the simulator can actually generate the bits, and the
  empirically measured entropy rate sides with the refined model.

Run:  python examples/entropy_model_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro.paper import PAPER_F0_HZ, paper_phase_noise_psd
from repro.phase import PhaseNoisePSD
from repro.trng import EROTRNG, EROTRNGConfiguration, markov_entropy_rate
from repro.trng.models import BaudetModel, RefinedEntropyModel

CALIBRATION_LENGTH = 200_000
TARGET_ENTROPY = 0.997


def part1_paper_oscillators() -> None:
    print("=" * 72)
    print("Part 1 - paper-calibrated oscillators (103 MHz, b_th = 276 Hz)")
    print("=" * 72)
    model = RefinedEntropyModel(PAPER_F0_HZ, paper_phase_noise_psd())

    print(f"classical calibration window: {CALIBRATION_LENGTH} periods\n")
    print("divider D    naive H (Fig.2)    refined H (Fig.3)    overestimation")
    for divider in (10_000, 20_000, 50_000, 100_000, 200_000, 500_000):
        comparison = model.compare(divider, calibration_length=CALIBRATION_LENGTH)
        print(
            f"{divider:>9d}    {comparison.naive_entropy:15.4f}    "
            f"{comparison.refined_entropy:17.4f}    {comparison.overestimation:+14.4f}"
        )

    refined_n = model.accumulation_for_entropy(TARGET_ENTROPY)
    naive_n = BaudetModel(
        PAPER_F0_HZ, model.naive_per_period_variance_s2(CALIBRATION_LENGTH)
    ).accumulation_for_entropy(TARGET_ENTROPY)
    print(
        f"\naccumulation needed for H >= {TARGET_ENTROPY}: refined N = {refined_n}, "
        f"naive N = {naive_n} (under-design factor {refined_n / naive_n:.1f}x)"
    )


def part2_empirical_check() -> None:
    print("\n" + "=" * 72)
    print("Part 2 - empirical check on a strong-noise design (simulated bits)")
    print("=" * 72)
    # Per-oscillator noise scaled up so a few hundred periods of accumulation
    # already produce usable entropy -- this keeps the bit-level simulation
    # affordable while exercising exactly the same model machinery.
    oscillator_psd = PhaseNoisePSD(b_thermal_hz=2.5e4, b_flicker_hz2=5e7)
    relative_psd = PhaseNoisePSD(5e4, 1e8)
    f0 = 103e6
    model = RefinedEntropyModel(f0, relative_psd)
    calibration = 100_000

    print("divider D    naive H    refined H    empirical entropy rate (simulated)")
    for divider in (100, 300, 1000):
        comparison = model.compare(divider, calibration_length=calibration)
        configuration = EROTRNGConfiguration(
            f0_hz=f0,
            oscillator_psd=oscillator_psd,
            divider=divider,
            frequency_mismatch=1.3e-3,
        )
        trng = EROTRNG(configuration, rng=np.random.default_rng(divider))
        bits = trng.generate(8_000)
        empirical = markov_entropy_rate(bits)
        print(
            f"{divider:>9d}    {comparison.naive_entropy:7.4f}    "
            f"{comparison.refined_entropy:9.4f}    {empirical:10.4f}"
        )

    print(
        "\nThe empirical entropy rate tracks the refined prediction; the naive"
        "\nmodel (calibrated on a long, flicker-contaminated measurement) promises"
        "\nmore entropy than the generator actually delivers."
    )


def main() -> None:
    part1_paper_oscillators()
    part2_empirical_check()


if __name__ == "__main__":
    main()
