#!/usr/bin/env python3
"""Section IV workflow: measure the thermal-noise contribution with digital hardware only.

This example mirrors the paper's experimental chapter step by step, but goes
further than the quickstart: it uses the *counter* measurement circuit of
Fig. 6 (the only thing a real FPGA can implement), applies the quantisation
correction, fits Eq. 11 with bootstrap confidence intervals, and finally
compares the extracted thermal jitter with the simulator's ground truth —
the stand-in for the paper's cross-check against "more expensive methods".

Run:  python examples/thermal_noise_extraction.py
"""

from __future__ import annotations

import numpy as np

from repro.core import extract_thermal_noise_from_curve
from repro.measurement import VirtualEvaristePlatform
from repro.phase import PhaseNoisePSD
from repro.measurement.platform import PlatformConfiguration


def main() -> None:
    # A board with stronger oscillator noise than the paper's, so that the
    # counter measurement (resolution: one period) reaches the jitter-dominated
    # regime at moderate accumulation lengths -- the regime any real counter
    # based measurement has to work in.
    configuration = PlatformConfiguration(
        name="strong-jitter demo board",
        f0_hz=100e6,
        oscillator_psd=PhaseNoisePSD(b_thermal_hz=5e4, b_flicker_hz2=2e7),
        frequency_mismatch=4e-4,
    )
    platform = VirtualEvaristePlatform(configuration, rng=np.random.default_rng(7))
    print(f"platform: {platform}")

    # --- Step 1: counter captures over a sweep of accumulation lengths ------
    n_sweep = [512, 1024, 2048, 4096, 8192, 16384]
    print(f"\nrunning counter campaign, N sweep = {n_sweep} ...")
    campaign = platform.counter_campaign(
        n_sweep=n_sweep, n_windows=256, correct_quantization=True
    )
    for capture, point in zip(campaign.captures, campaign.curve.points):
        print(
            f"  N = {point.n_accumulations:>6d}: "
            f"<Q> = {np.mean(capture.counts):9.1f}, "
            f"f0^2 sigma^2_N = {point.sigma2_n_s2 * platform.f0_hz**2:.3e}"
        )

    # --- Step 2: Eq. 11 fit and thermal extraction with confidence intervals -
    report = extract_thermal_noise_from_curve(
        campaign.curve,
        with_confidence_intervals=True,
        rng=np.random.default_rng(11),
    )
    print("\n--- extracted (counter path) ---")
    print(report.summary())

    # --- Step 3: cross-check against the simulator's ground truth -----------
    truth_sigma_ps = (
        np.sqrt(platform.relative_psd.thermal_period_jitter_variance(platform.f0_hz))
        * 1e12
    )
    error = abs(report.thermal_jitter_std_ps - truth_sigma_ps) / truth_sigma_ps
    print("\n--- cross-check (paper: 'close to measurements by more expensive methods') ---")
    print(f"ground-truth thermal jitter : {truth_sigma_ps:.2f} ps")
    print(f"extracted thermal jitter    : {report.thermal_jitter_std_ps:.2f} ps")
    print(f"relative error              : {error:.1%}")

    # --- Step 4: what the measurement means for the TRNG designer -----------
    budget = report.independence_threshold_n
    print(
        f"\njitter accumulation may be treated as independent up to about "
        f"N = {budget:.0f} periods (r_N > 95%); beyond that the flicker-induced"
        f" dependence must be taken into account."
    )


if __name__ == "__main__":
    main()
