#!/usr/bin/env python3
"""HTTP front-door tour: REST one-shots, a streaming session, WebSocket.

Drives the three ways to consume the gateway (`repro.serving.http`):

1. one-shot ``POST /v1/bits`` / ``POST /v1/sigma2n`` — the coalescing path,
   bit-for-bit identical to the JSON-lines TCP server;
2. a REST streaming session — open once, read chunks; the concatenated
   chunks equal the one-shot answer for the same seed, bitwise;
3. the ``/v1/stream`` WebSocket — the same session ops as JSON text frames
   over one connection.

By default the script spawns an ephemeral in-process gateway so it runs
self-contained; point it at a live server (e.g. started with
``python -m repro.serve --http 0.0.0.0:8080``) instead::

    python examples/http_client.py [--connect HOST:PORT]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

sys.path.insert(0, "src")

from repro.serving import ServiceConfig, TRNGService  # noqa: E402
from repro.serving.http import HTTPGateway, http_request  # noqa: E402
from repro.serving.http.wire import (  # noqa: E402
    OP_CLOSE,
    OP_TEXT,
    encode_client_frame,
)


async def call(host: str, port: int, method: str, path: str, payload=None):
    status, body = await http_request(host, port, method, path, payload)
    return status, json.loads(body) if body else None


async def rest_tour(host: str, port: int) -> None:
    print("--- REST one-shots ---")
    status, reply = await call(
        host, port, "POST", "/v1/bits",
        {"n_bits": 64, "divider": 512, "seed": 7},
    )
    bits = reply["result"]["bits"]
    print(f"POST /v1/bits        -> {status}, 64 bits: {bits[:32]}...")

    status, reply = await call(
        host, port, "POST", "/v1/sigma2n",
        {"n_periods": 4096, "seed": 11},
    )
    fit = reply["result"]
    print(
        f"POST /v1/sigma2n     -> {status}, "
        f"b_thermal = {fit['b_thermal_hz']:.3g} Hz"
    )

    status, health = await call(host, port, "GET", "/healthz")
    print(f"GET  /healthz        -> {status}, status={health['status']}")

    print("\n--- REST streaming session ---")
    status, opened = await call(
        host, port, "POST", "/v1/sessions", {"divider": 512, "seed": 7}
    )
    session = opened["result"]["session"]
    print(f"POST /v1/sessions    -> {status}, id={session}")
    streamed = ""
    for n_bits in (24, 8, 32):
        _, chunk = await call(
            host, port, "POST", f"/v1/sessions/{session}/bits",
            {"n_bits": n_bits},
        )
        streamed += chunk["result"]["bits"]
        print(f"  read {n_bits:2d} bits at offset {chunk['result']['offset']}")
    status, _ = await call(host, port, "DELETE", f"/v1/sessions/{session}")
    print(f"DELETE session       -> {status}")

    # The session contract: chunks concatenate to the one-shot answer.
    _, one_shot = await call(
        host, port, "POST", "/v1/bits",
        {"n_bits": 64, "divider": 512, "seed": 7},
    )
    assert streamed == one_shot["result"]["bits"]
    print("session chunks == one-shot bits (bitwise) ✓")


async def websocket_tour(host: str, port: int) -> None:
    print("\n--- WebSocket stream ---")
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        (
            "GET /v1/stream HTTP/1.1\r\n"
            f"host: {host}\r\n"
            "upgrade: websocket\r\nconnection: Upgrade\r\n"
            "sec-websocket-key: ZXhhbXBsZS1ub25jZS0xMjM=\r\n"
            "sec-websocket-version: 13\r\n\r\n"
        ).encode()
    )
    await writer.drain()
    handshake = await reader.readuntil(b"\r\n\r\n")
    print(f"handshake            -> {handshake.splitlines()[0].decode()}")

    async def ws_call(message: dict) -> dict:
        writer.write(
            encode_client_frame(
                OP_TEXT, json.dumps(message).encode(), b"\xde\xad\xbe\xef"
            )
        )
        await writer.drain()
        header = await reader.readexactly(2)
        length = header[1] & 0x7F
        if length == 126:
            length = int.from_bytes(await reader.readexactly(2), "big")
        return json.loads(await reader.readexactly(length))

    opened = await ws_call({"op": "open", "divider": 512, "seed": 21, "id": 1})
    session = opened["result"]["session"]
    print(f"op=open              -> session {session}")
    for n_bits in (16, 48):
        reply = await ws_call(
            {"op": "read", "session": session, "n_bits": n_bits}
        )
        print(
            f"op=read {n_bits:2d}           -> offset "
            f"{reply['result']['offset']}, bits {reply['result']['bits'][:16]}..."
        )
    writer.write(encode_client_frame(OP_CLOSE, b"", b"\x00\x00\x00\x00"))
    await writer.drain()
    writer.close()
    await writer.wait_closed()
    print("closed (server reaps the WebSocket-scoped session)")


async def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="use a running gateway instead of spawning an ephemeral one",
    )
    args = parser.parse_args()

    if args.connect:
        host, _, port_text = args.connect.rpartition(":")
        await rest_tour(host, int(port_text))
        await websocket_tour(host, int(port_text))
        return

    config = ServiceConfig(max_batch=16, max_wait_ms=2.0)
    async with TRNGService(config) as service:
        gateway = HTTPGateway(service, port=0)
        await gateway.start()
        print(f"ephemeral gateway on 127.0.0.1:{gateway.port}\n")
        try:
            await rest_tour("127.0.0.1", gateway.port)
            await websocket_tour("127.0.0.1", gateway.port)
        finally:
            await gateway.stop()


if __name__ == "__main__":
    asyncio.run(main())
