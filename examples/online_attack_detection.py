#!/usr/bin/env python3
"""Embedded thermal-noise online test vs a frequency-injection attack.

The conclusion of the paper proposes to embed the thermal-noise measurement in
the logic device and use it as a fast, generator-specific online test
(AIS31-style).  This example stages the full scenario:

1. characterise a healthy oscillator pair (reference b_th);
2. arm the online test;
3. ramp a Markettos-style frequency-injection attack and report, for each
   attack strength, what the thermal test and a classical bit-level monobit
   online test see.

Run:  python examples/online_attack_detection.py
"""

from __future__ import annotations

import numpy as np

from repro.ais31.online import monobit_online_test
from repro.ais31.thermal_test import ThermalNoiseOnlineTest, characterize_reference
from repro.attacks import FrequencyInjectionAttack, InjectionParameters
from repro.oscillator.period_model import JitteryClock
from repro.phase import PhaseNoisePSD
from repro.trng.digitizer import DFlipFlopSampler

F0 = 100e6
PER_OSCILLATOR_PSD = PhaseNoisePSD(b_thermal_hz=5e4, b_flicker_hz2=1e7)
ATTACK_STRENGTHS = [0.0, 0.3, 0.6, 0.9, 0.99]


def fresh_pair(seed: int):
    rng = np.random.default_rng(seed)
    return (
        JitteryClock(F0, PER_OSCILLATOR_PSD, rng=rng),
        JitteryClock(F0, PER_OSCILLATOR_PSD, rng=rng),
    )


def attacked_pair(strength: float, seed: int):
    osc1, osc2 = fresh_pair(seed)
    if strength == 0.0:
        return osc1, osc2
    parameters = InjectionParameters(
        injection_frequency_hz=F0, locking_strength=strength
    )
    return (
        FrequencyInjectionAttack(osc1, parameters, rng=np.random.default_rng(seed + 1)),
        FrequencyInjectionAttack(osc2, parameters, rng=np.random.default_rng(seed + 2)),
    )


def main() -> None:
    # --- characterisation run (factory / power-up) ---------------------------
    print("characterising the healthy generator ...")
    osc1, osc2 = fresh_pair(seed=1)
    reference = characterize_reference(
        osc1, osc2, n_sweep=[1024, 2048, 4096, 8192], n_windows=192
    )
    print(reference.summary())

    online = ThermalNoiseOnlineTest(
        reference_b_thermal_hz=reference.b_thermal_hz,
        minimum_ratio=0.5,
        accumulation_lengths=(2048, 8192),
        n_windows=256,
    )

    # --- attack ramp ----------------------------------------------------------
    print("\nattack ramp (frequency injection at the oscillator frequency)")
    print("strength   thermal test (b_th ratio)    monobit test on output bits")
    for index, strength in enumerate(ATTACK_STRENGTHS):
        victim_1, victim_2 = attacked_pair(strength, seed=100 + index)
        thermal_result = online.execute(victim_1, victim_2)

        sampler_1, sampler_2 = attacked_pair(strength, seed=200 + index)
        sampler = DFlipFlopSampler(sampler_1, sampler_2, divider=256)
        bits = sampler.sample(40_000).bits
        monobit_report = monobit_online_test(block_size_bits=20_000).run(bits)

        thermal_verdict = "ALARM" if not thermal_result.passed else "pass "
        monobit_verdict = "ALARM" if monobit_report.alarm else "pass "
        print(
            f"{strength:>7.2f}    {thermal_verdict} (ratio = {thermal_result.ratio:5.2f})"
            f"            {monobit_verdict} ({monobit_report.n_failures} failed blocks)"
        )

    print(
        "\nThe thermal online test reacts as soon as the exploitable (thermal)"
        "\njitter drops, even while the output bits may still look statistically"
        "\nplausible -- the behaviour the paper's conclusion calls for."
    )


if __name__ == "__main__":
    main()
