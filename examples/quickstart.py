#!/usr/bin/env python3
"""Quickstart: measure the thermal jitter of a virtual ring-oscillator pair.

This walks the core loop of the paper in about twenty lines:

1. instantiate the virtual Evariste/Cyclone III platform (the software
   substitute for the paper's FPGA board, calibrated to its 103 MHz rings);
2. capture the relative jitter between the two rings;
3. estimate the accumulated variance sigma^2_N over a sweep of N (Fig. 7);
4. fit the linear + quadratic law of Eq. 11 and read off the thermal-only
   jitter, the ratio constant K and the independence threshold.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import assess_independence, extract_thermal_noise_from_curve
from repro.measurement import VirtualEvaristePlatform
from repro.paper import PAPER_REFERENCE


def main() -> None:
    platform = VirtualEvaristePlatform(rng=np.random.default_rng(42))
    print(f"platform: {platform}")

    # Step 1+2: capture 200k relative periods (a few milliseconds of "lab time").
    record = platform.relative_jitter(200_000)
    print(f"captured {record.size} relative periods, "
          f"raw jitter std = {np.std(record - np.mean(record)) * 1e12:.2f} ps")

    # Step 3+4: sigma^2_N curve, Eq. 11 fit, thermal extraction.
    curve = platform.sigma2_n_campaign(n_periods=200_000)
    report = extract_thermal_noise_from_curve(curve)
    print("\n--- Section IV thermal-noise extraction ---")
    print(report.summary())

    print("\n--- paper reference values ---")
    print(f"b_th      = {PAPER_REFERENCE.b_thermal_hz:.2f} Hz")
    print(f"sigma_th  = {PAPER_REFERENCE.thermal_jitter_s * 1e12:.2f} ps")
    print(f"K         = {PAPER_REFERENCE.ratio_constant:.0f}")
    print(f"N (95%)   = {PAPER_REFERENCE.independence_threshold_n}")

    # Bonus: the independence diagnostics of Section III.
    verdict = assess_independence(record[:100_000], platform.f0_hz)
    print("\n--- independence diagnostics ---")
    print(verdict.summary())


if __name__ == "__main__":
    main()
