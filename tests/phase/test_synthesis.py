"""Unit and statistical tests for the period-jitter synthesizer.

The synthesizer is the virtual oscillator every experiment relies on, so these
tests verify not only the API but the *statistics*: the thermal per-period
variance, the linear growth of sigma^2_N for thermal-only noise (Bienayme /
Eq. 6) and the quadratic growth added by flicker noise (Eq. 11).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sigma_n import s_n_realizations
from repro.core.theory import sigma2_n_closed_form
from repro.phase.psd import PhaseNoisePSD
from repro.phase.synthesis import (
    PeriodJitterSynthesizer,
    synthesize_periods,
    synthesize_relative_periods,
)

F0 = 103e6


class TestBasicProperties:
    def test_period_count(self, rng):
        synthesizer = PeriodJitterSynthesizer(F0, PhaseNoisePSD(276.0, 1.9e6), rng=rng)
        assert synthesizer.periods(1000).shape == (1000,)

    def test_zero_periods(self, rng):
        synthesizer = PeriodJitterSynthesizer(F0, PhaseNoisePSD(276.0, 1.9e6), rng=rng)
        assert synthesizer.periods(0).size == 0

    def test_negative_period_count_rejected(self, rng):
        synthesizer = PeriodJitterSynthesizer(F0, PhaseNoisePSD(276.0, 0.0), rng=rng)
        with pytest.raises(ValueError):
            synthesizer.periods(-1)

    def test_invalid_f0_rejected(self):
        with pytest.raises(ValueError):
            PeriodJitterSynthesizer(0.0, PhaseNoisePSD(1.0, 0.0))

    def test_noiseless_oscillator_is_perfectly_periodic(self, rng):
        synthesizer = PeriodJitterSynthesizer(F0, PhaseNoisePSD(0.0, 0.0), rng=rng)
        periods = synthesizer.periods(100)
        np.testing.assert_allclose(periods, 1.0 / F0)

    def test_jitter_is_periods_minus_nominal(self, rng):
        synthesizer = PeriodJitterSynthesizer(F0, PhaseNoisePSD(276.0, 1.9e6), rng=rng)
        decomposition = synthesizer.decompose(500)
        np.testing.assert_allclose(
            decomposition.jitter_s,
            decomposition.periods_s - 1.0 / F0,
        )

    def test_decomposition_components_sum_to_total(self, rng):
        synthesizer = PeriodJitterSynthesizer(F0, PhaseNoisePSD(276.0, 1.9e6), rng=rng)
        decomposition = synthesizer.decompose(500)
        np.testing.assert_allclose(
            decomposition.periods_s,
            1.0 / F0 + decomposition.thermal_jitter_s + decomposition.flicker_jitter_s,
        )

    def test_reproducibility_with_seeded_rng(self):
        psd = PhaseNoisePSD(276.0, 1.9e6)
        first = synthesize_periods(F0, psd, 256, rng=np.random.default_rng(5))
        second = synthesize_periods(F0, psd, 256, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(first, second)

    def test_edge_times_are_cumulative_periods(self, rng):
        synthesizer = PeriodJitterSynthesizer(F0, PhaseNoisePSD(276.0, 0.0), rng=rng)
        synthesizer_copy = PeriodJitterSynthesizer(
            F0, PhaseNoisePSD(276.0, 0.0), rng=np.random.default_rng(12345)
        )
        edges = synthesizer_copy.edge_times(200, start_time_s=1e-6)
        assert edges.shape == (201,)
        assert edges[0] == pytest.approx(1e-6)
        assert np.all(np.diff(edges) > 0.0)

    def test_excess_phase_reference_is_zero(self, rng):
        synthesizer = PeriodJitterSynthesizer(F0, PhaseNoisePSD(276.0, 1.9e6), rng=rng)
        phase = synthesizer.excess_phase(100)
        assert phase[0] == 0.0
        assert phase.shape == (101,)


class TestStatistics:
    def test_thermal_per_period_std_matches_b_thermal(self, rng):
        """sigma_th = sqrt(b_th/f0^3): 15.89 ps for the paper's parameters."""
        synthesizer = PeriodJitterSynthesizer(F0, PhaseNoisePSD(276.04, 0.0), rng=rng)
        jitter = synthesizer.jitter(100_000)
        assert np.std(jitter) == pytest.approx(15.89e-12, rel=0.03)

    def test_thermal_jitter_realizations_are_uncorrelated(self, rng):
        synthesizer = PeriodJitterSynthesizer(F0, PhaseNoisePSD(276.04, 0.0), rng=rng)
        jitter = synthesizer.jitter(50_000)
        lag1 = np.corrcoef(jitter[:-1], jitter[1:])[0, 1]
        assert abs(lag1) < 0.02

    def test_flicker_jitter_realizations_are_positively_correlated(self, rng):
        synthesizer = PeriodJitterSynthesizer(F0, PhaseNoisePSD(0.0, 1.9e6), rng=rng)
        jitter = synthesizer.jitter(50_000)
        lag1 = np.corrcoef(jitter[:-1], jitter[1:])[0, 1]
        assert lag1 > 0.1

    def test_thermal_only_sigma2_n_is_linear(self, thermal_only_jitter_record):
        """Bienayme (Eq. 6): with independent jitter, sigma^2_N = 2 N sigma^2."""
        jitter = thermal_only_jitter_record
        sigma2 = np.var(jitter)
        for n in (10, 100, 1000):
            values = s_n_realizations(jitter, n)
            measured = np.mean(values**2)
            assert measured == pytest.approx(2.0 * n * sigma2, rel=0.08)

    def test_full_model_sigma2_n_matches_closed_form(self, paper_jitter_record, paper_psd, paper_f0):
        """Eq. 11 holds for the synthesized thermal + flicker process."""
        for n in (10, 100, 1000):
            values = s_n_realizations(paper_jitter_record, n)
            measured = np.mean(values**2)
            expected = float(sigma2_n_closed_form(paper_psd, paper_f0, n))
            assert measured == pytest.approx(expected, rel=0.12)

    def test_relative_periods_combine_the_two_psds(self, rng):
        psd = PhaseNoisePSD(138.0, 0.0)
        relative = synthesize_relative_periods(F0, psd, psd, 100_000, rng=rng)
        jitter = relative - np.mean(relative)
        # combined b_th = 276 -> std ~= 15.89 ps
        assert np.std(jitter) == pytest.approx(15.89e-12, rel=0.05)

    @pytest.mark.parametrize("method", ["spectral", "ar"])
    def test_flicker_methods_agree_on_sigma2_n(self, method):
        psd = PhaseNoisePSD(0.0, 1.9e6)
        synthesizer = PeriodJitterSynthesizer(
            F0, psd, rng=np.random.default_rng(17), flicker_method=method
        )
        jitter = synthesizer.jitter(60_000)
        measured = np.mean(s_n_realizations(jitter, 200) ** 2)
        expected = float(sigma2_n_closed_form(psd, F0, 200))
        assert measured == pytest.approx(expected, rel=0.35)
