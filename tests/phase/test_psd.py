"""Unit tests for the two-coefficient phase-noise PSD (paper Eq. 10)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.phase.psd import PhaseNoisePSD


class TestEvaluation:
    def test_thermal_only_follows_inverse_square(self):
        psd = PhaseNoisePSD(b_thermal_hz=100.0, b_flicker_hz2=0.0)
        assert psd(10.0) == pytest.approx(1.0)
        assert psd(100.0) == pytest.approx(0.01)

    def test_flicker_only_follows_inverse_cube(self):
        psd = PhaseNoisePSD(b_thermal_hz=0.0, b_flicker_hz2=1000.0)
        assert psd(10.0) == pytest.approx(1.0)
        assert psd(100.0) == pytest.approx(1e-3)

    def test_total_is_sum_of_parts(self):
        psd = PhaseNoisePSD(b_thermal_hz=276.0, b_flicker_hz2=1.9e6)
        frequencies = np.logspace(1, 7, 20)
        np.testing.assert_allclose(
            psd(frequencies),
            psd.thermal_part(frequencies) + psd.flicker_part(frequencies),
        )

    def test_rejects_non_positive_frequency(self):
        psd = PhaseNoisePSD(1.0, 1.0)
        with pytest.raises(ValueError):
            psd(0.0)
        with pytest.raises(ValueError):
            psd(np.array([1.0, -2.0]))

    def test_rejects_negative_coefficients(self):
        with pytest.raises(ValueError):
            PhaseNoisePSD(-1.0, 0.0)
        with pytest.raises(ValueError):
            PhaseNoisePSD(0.0, -1.0)

    def test_scalar_in_scalar_out(self):
        psd = PhaseNoisePSD(1.0, 1.0)
        assert isinstance(psd(3.0), float)

    def test_phase_noise_dbc(self):
        psd = PhaseNoisePSD(b_thermal_hz=100.0, b_flicker_hz2=0.0)
        # L(f) = S_phi/2 = 0.5 at 10 Hz -> -3.01 dBc/Hz
        assert psd.phase_noise_dbc_per_hz(10.0) == pytest.approx(-3.0103, abs=1e-3)


class TestCornerFrequency:
    def test_corner_where_terms_are_equal(self):
        psd = PhaseNoisePSD(b_thermal_hz=100.0, b_flicker_hz2=5000.0)
        corner = psd.corner_frequency_hz()
        assert corner == pytest.approx(50.0)
        assert psd.thermal_part(corner) == pytest.approx(psd.flicker_part(corner))

    def test_no_flicker_gives_zero_corner(self):
        assert PhaseNoisePSD(10.0, 0.0).corner_frequency_hz() == 0.0

    def test_no_thermal_gives_infinite_corner(self):
        assert np.isinf(PhaseNoisePSD(0.0, 10.0).corner_frequency_hz())


class TestJitterParameterisation:
    def test_thermal_period_jitter_variance_matches_paper_number(self):
        """b_th = 276.04 Hz at 103 MHz must give sigma_th ~= 15.89 ps (Sec. IV-B)."""
        psd = PhaseNoisePSD(b_thermal_hz=276.04, b_flicker_hz2=0.0)
        sigma = np.sqrt(psd.thermal_period_jitter_variance(103e6))
        assert sigma == pytest.approx(15.89e-12, rel=1e-3)

    def test_flicker_coefficient_conversion(self):
        psd = PhaseNoisePSD(b_thermal_hz=0.0, b_flicker_hz2=2.0e6)
        h_minus1 = psd.flicker_fractional_frequency_coefficient(100e6)
        assert h_minus1 == pytest.approx(2.0 * 2.0e6 / (100e6) ** 2)

    def test_round_trip_from_jitter_parameters(self):
        original = PhaseNoisePSD(b_thermal_hz=300.0, b_flicker_hz2=1.5e6)
        f0 = 103e6
        rebuilt = PhaseNoisePSD.from_jitter_parameters(
            f0,
            np.sqrt(original.thermal_period_jitter_variance(f0)),
            original.flicker_fractional_frequency_coefficient(f0),
        )
        assert rebuilt.b_thermal_hz == pytest.approx(original.b_thermal_hz)
        assert rebuilt.b_flicker_hz2 == pytest.approx(original.b_flicker_hz2)

    def test_invalid_f0_rejected(self):
        psd = PhaseNoisePSD(1.0, 1.0)
        with pytest.raises(ValueError):
            psd.thermal_period_jitter_variance(0.0)

    def test_split(self):
        psd = PhaseNoisePSD(3.0, 7.0)
        thermal, flicker = psd.split()
        assert thermal.b_thermal_hz == 3.0 and thermal.b_flicker_hz2 == 0.0
        assert flicker.b_thermal_hz == 0.0 and flicker.b_flicker_hz2 == 7.0
