"""Unit tests for the Hajimiri ISF conversion (current noise -> phase noise)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.noise.technology import get_node
from repro.phase.isf import (
    ImpulseSensitivityFunction,
    phase_psd_from_current_noise,
    phase_psd_from_inverter,
    ring_oscillation_frequency,
)


class TestImpulseSensitivityFunction:
    def test_default_is_plausible(self):
        isf = ImpulseSensitivityFunction.ring_oscillator_default()
        assert isf.dc_coefficient > 0.0
        assert isf.sum_of_squares > isf.dc_coefficient**2
        assert isf.rms > 0.0

    def test_sum_of_squares(self):
        isf = ImpulseSensitivityFunction(0.5, [1.0, 0.5])
        assert isf.sum_of_squares == pytest.approx(0.25 + 1.0 + 0.25)

    def test_requires_harmonics(self):
        with pytest.raises(ValueError):
            ImpulseSensitivityFunction(0.1, [])

    def test_symmetric_waveform_has_no_dc(self):
        isf = ImpulseSensitivityFunction.ring_oscillator_default(asymmetry=0.0)
        assert isf.dc_coefficient == 0.0

    def test_invalid_defaults_rejected(self):
        with pytest.raises(ValueError):
            ImpulseSensitivityFunction.ring_oscillator_default(n_harmonics=0)
        with pytest.raises(ValueError):
            ImpulseSensitivityFunction.ring_oscillator_default(asymmetry=-0.1)


class TestConversion:
    def test_thermal_noise_feeds_b_thermal_only(self):
        psd = phase_psd_from_current_noise(
            thermal_current_psd_a2_per_hz=1e-22,
            flicker_current_coefficient_a2=0.0,
            q_max_coulomb=4e-15,
        )
        assert psd.b_thermal_hz > 0.0
        assert psd.b_flicker_hz2 == 0.0

    def test_flicker_noise_feeds_b_flicker_only(self):
        psd = phase_psd_from_current_noise(
            thermal_current_psd_a2_per_hz=0.0,
            flicker_current_coefficient_a2=1e-18,
            q_max_coulomb=4e-15,
        )
        assert psd.b_thermal_hz == 0.0
        assert psd.b_flicker_hz2 > 0.0

    def test_symmetric_isf_suppresses_flicker_upconversion(self):
        """Hajimiri's key claim: no DC ISF component, no 1/f^3 phase noise."""
        symmetric = ImpulseSensitivityFunction.ring_oscillator_default(asymmetry=0.0)
        psd = phase_psd_from_current_noise(1e-22, 1e-18, 4e-15, isf=symmetric)
        assert psd.b_flicker_hz2 == 0.0
        assert psd.b_thermal_hz > 0.0

    def test_coefficients_scale_linearly_with_stage_count(self):
        single = phase_psd_from_current_noise(1e-22, 1e-18, 4e-15, n_stages=1)
        triple = phase_psd_from_current_noise(1e-22, 1e-18, 4e-15, n_stages=3)
        assert triple.b_thermal_hz == pytest.approx(3.0 * single.b_thermal_hz)
        assert triple.b_flicker_hz2 == pytest.approx(3.0 * single.b_flicker_hz2)

    def test_coefficients_scale_inverse_square_of_qmax(self):
        small = phase_psd_from_current_noise(1e-22, 1e-18, 2e-15)
        large = phase_psd_from_current_noise(1e-22, 1e-18, 4e-15)
        assert small.b_thermal_hz == pytest.approx(4.0 * large.b_thermal_hz)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            phase_psd_from_current_noise(-1.0, 0.0, 1e-15)
        with pytest.raises(ValueError):
            phase_psd_from_current_noise(1e-22, 0.0, 0.0)
        with pytest.raises(ValueError):
            phase_psd_from_current_noise(1e-22, 0.0, 1e-15, n_stages=0)


class TestInverterPath:
    def test_frequency_decreases_with_stage_count(self):
        cell = get_node("65nm").inverter()
        assert ring_oscillation_frequency(cell, 3) > ring_oscillation_frequency(cell, 5)

    def test_frequency_requires_odd_stage_count(self):
        cell = get_node("65nm").inverter()
        with pytest.raises(ValueError):
            ring_oscillation_frequency(cell, 4)
        with pytest.raises(ValueError):
            ring_oscillation_frequency(cell, 1)

    def test_inverter_conversion_produces_both_coefficients(self):
        cell = get_node("65nm").inverter()
        psd = phase_psd_from_inverter(cell, 3)
        assert psd.b_thermal_hz > 0.0
        assert psd.b_flicker_hz2 > 0.0

    def test_bottom_up_jitter_is_in_a_physical_range(self):
        """The predicted per-period thermal jitter of a 65nm ring must be
        within roughly 0.01 - 10 ps: the order of magnitude reported for real
        FPGA/ASIC ring oscillators (the paper measures ~16 ps for the pair of
        much slower FPGA rings)."""
        cell = get_node("65nm").inverter()
        psd = phase_psd_from_inverter(cell, 3)
        f0 = ring_oscillation_frequency(cell, 3)
        sigma = np.sqrt(psd.thermal_period_jitter_variance(f0))
        assert 1e-15 < sigma < 1e-11

    def test_smaller_node_has_larger_flicker_fraction(self):
        """Technology scaling trend of the paper's conclusion."""
        old = get_node("130nm")
        new = get_node("28nm")
        psd_old = phase_psd_from_inverter(old.inverter(), 3)
        psd_new = phase_psd_from_inverter(new.inverter(), 3)
        ratio_old = psd_old.b_flicker_hz2 / psd_old.b_thermal_hz
        ratio_new = psd_new.b_flicker_hz2 / psd_new.b_thermal_hz
        assert ratio_new > ratio_old
