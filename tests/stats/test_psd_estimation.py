"""Unit tests for the PSD estimators and the power-law fitter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.noise.flicker import generate_pink_noise
from repro.stats.psd_estimation import (
    PSDEstimate,
    fit_power_law,
    periodogram_psd,
    welch_psd,
)


class TestEstimators:
    def test_white_noise_level(self, rng):
        """Unit-variance white noise sampled at fs has one-sided PSD 2/fs."""
        fs = 1e6
        samples = rng.normal(0.0, 1.0, size=200_000)
        estimate = welch_psd(samples, fs, segment_length=4096)
        assert np.median(estimate.psd) == pytest.approx(2.0 / fs, rel=0.1)

    def test_parseval_band_power(self, rng):
        fs = 1e3
        samples = rng.normal(0.0, 2.0, size=100_000)
        estimate = periodogram_psd(samples, fs)
        assert estimate.band_power() == pytest.approx(np.var(samples), rel=0.05)

    def test_dc_bin_removed(self, rng):
        estimate = periodogram_psd(rng.normal(size=1024), 1.0)
        assert np.all(estimate.frequencies_hz > 0.0)

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            periodogram_psd(rng.normal(size=10), 0.0)
        with pytest.raises(ValueError):
            welch_psd(np.array([1.0]), 1.0)

    def test_restrict(self, rng):
        estimate = welch_psd(rng.normal(size=8192), 1.0, segment_length=1024)
        band = estimate.restrict(0.01, 0.1)
        assert np.all((band.frequencies_hz >= 0.01) & (band.frequencies_hz <= 0.1))
        with pytest.raises(ValueError):
            estimate.restrict(0.2, 0.1)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            PSDEstimate(np.arange(3.0), np.arange(4.0))


class TestPowerLawFit:
    def test_white_noise_slope_near_zero(self, rng):
        estimate = welch_psd(rng.normal(size=65536), 1.0, segment_length=4096)
        _amplitude, exponent = fit_power_law(estimate.restrict(1e-3, 0.4))
        assert abs(exponent) < 0.15

    def test_pink_noise_slope_near_minus_one(self):
        samples = generate_pink_noise(65536, rng=np.random.default_rng(2))
        estimate = welch_psd(samples, 1.0, segment_length=4096)
        _amplitude, exponent = fit_power_law(estimate.restrict(1e-3, 0.1))
        assert exponent == pytest.approx(-1.0, abs=0.3)

    def test_exact_power_law_recovered(self):
        frequencies = np.logspace(0, 3, 50)
        estimate = PSDEstimate(frequencies, 5.0 * frequencies**-2)
        amplitude, exponent = fit_power_law(estimate)
        assert amplitude == pytest.approx(5.0, rel=1e-6)
        assert exponent == pytest.approx(-2.0, abs=1e-9)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law(PSDEstimate(np.array([1.0]), np.array([1.0])))
