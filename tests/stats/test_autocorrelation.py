"""Unit tests for the autocorrelation and portmanteau independence tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.noise.flicker import generate_pink_noise
from repro.stats.autocorrelation import (
    autocorrelation,
    first_lag_correlation_test,
    lag_scatter,
    ljung_box_test,
)


class TestAutocorrelation:
    def test_lag_zero_is_one(self, rng):
        series = rng.normal(size=1000)
        assert autocorrelation(series, 5)[0] == pytest.approx(1.0)

    def test_white_noise_has_small_correlations(self, rng):
        series = rng.normal(size=50_000)
        rho = autocorrelation(series, 10)[1:]
        assert np.all(np.abs(rho) < 0.03)

    def test_ar1_process_has_expected_lag1(self, rng):
        phi = 0.8
        noise = rng.normal(size=100_000)
        series = np.empty_like(noise)
        series[0] = noise[0]
        for index in range(1, noise.size):
            series[index] = phi * series[index - 1] + noise[index]
        rho = autocorrelation(series, 2)
        assert rho[1] == pytest.approx(phi, abs=0.02)
        assert rho[2] == pytest.approx(phi**2, abs=0.03)

    def test_invalid_lag_rejected(self, rng):
        with pytest.raises(ValueError):
            autocorrelation(rng.normal(size=10), 10)

    def test_constant_series_rejected(self):
        with pytest.raises(ValueError):
            autocorrelation(np.ones(100), 2)

    def test_two_dimensional_input_rejected(self, rng):
        with pytest.raises(ValueError):
            autocorrelation(rng.normal(size=(10, 10)), 2)


class TestLjungBox:
    def test_white_noise_not_rejected(self, rng):
        series = rng.normal(size=20_000)
        result = ljung_box_test(series, lags=20)
        assert result.p_value > 0.01
        assert result.independent_at(0.01)

    def test_flicker_noise_rejected(self):
        series = generate_pink_noise(20_000, rng=np.random.default_rng(8))
        result = ljung_box_test(series, lags=20)
        assert result.p_value < 1e-6
        assert not result.independent_at(0.01)

    def test_statistic_is_positive(self, rng):
        result = ljung_box_test(rng.normal(size=1000), lags=5)
        assert result.statistic >= 0.0

    def test_short_series_rejected(self, rng):
        with pytest.raises(ValueError):
            ljung_box_test(rng.normal(size=10), lags=20)

    def test_invalid_significance(self, rng):
        result = ljung_box_test(rng.normal(size=1000), lags=5)
        with pytest.raises(ValueError):
            result.independent_at(1.5)


class TestHelpers:
    def test_lag_scatter_shape_and_content(self):
        series = np.arange(10.0)
        pairs = lag_scatter(series, lag=2)
        assert pairs.shape == (8, 2)
        np.testing.assert_allclose(pairs[0], [0.0, 2.0])

    def test_lag_scatter_validation(self):
        with pytest.raises(ValueError):
            lag_scatter(np.arange(3.0), lag=0)
        with pytest.raises(ValueError):
            lag_scatter(np.arange(3.0), lag=5)

    def test_first_lag_test_on_white_and_correlated_data(self, rng):
        white = rng.normal(size=20_000)
        assert first_lag_correlation_test(white).p_value > 0.01
        correlated = np.cumsum(rng.normal(size=5_000))
        assert first_lag_correlation_test(correlated).p_value < 1e-6
