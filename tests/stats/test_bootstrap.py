"""Unit tests for bootstrap confidence intervals and block resampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.bootstrap import (
    ConfidenceInterval,
    block_bootstrap_indices,
    bootstrap_confidence_interval,
)


class TestConfidenceInterval:
    def test_width_and_contains(self):
        interval = ConfidenceInterval(1.0, 0.5, 1.5, 0.95)
        assert interval.width == pytest.approx(1.0)
        assert interval.contains(1.2)
        assert not interval.contains(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConfidenceInterval(1.0, 2.0, 1.5, 0.95)
        with pytest.raises(ValueError):
            ConfidenceInterval(1.0, 0.5, 1.5, 1.5)


class TestBootstrapCI:
    def test_mean_interval_covers_true_mean(self, rng):
        samples = rng.normal(5.0, 1.0, size=2000)
        interval = bootstrap_confidence_interval(
            samples, np.mean, n_resamples=300, rng=rng
        )
        assert interval.contains(5.0)
        assert interval.point_estimate == pytest.approx(np.mean(samples))

    def test_interval_narrows_with_more_data(self, rng):
        small = bootstrap_confidence_interval(
            rng.normal(size=50), np.mean, n_resamples=200, rng=rng
        )
        large = bootstrap_confidence_interval(
            rng.normal(size=5000), np.mean, n_resamples=200, rng=rng
        )
        assert large.width < small.width

    def test_point_estimate_always_inside(self, rng):
        samples = rng.exponential(size=200)
        interval = bootstrap_confidence_interval(
            samples, np.median, n_resamples=100, rng=rng
        )
        assert interval.contains(interval.point_estimate)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            bootstrap_confidence_interval(np.array([1.0]), np.mean)
        with pytest.raises(ValueError):
            bootstrap_confidence_interval(
                rng.normal(size=10), np.mean, n_resamples=5
            )
        with pytest.raises(ValueError):
            bootstrap_confidence_interval(
                rng.normal(size=10), np.mean, confidence_level=1.2
            )


class TestBlockBootstrap:
    def test_indices_shape_and_range(self, rng):
        indices = block_bootstrap_indices(1000, 50, rng=rng)
        assert indices.shape == (1000,)
        assert indices.min() >= 0
        assert indices.max() < 1000

    def test_blocks_are_contiguous(self, rng):
        indices = block_bootstrap_indices(100, 10, rng=rng)
        first_block = indices[:10]
        np.testing.assert_array_equal(np.diff(first_block), 1)

    def test_block_longer_than_series_is_clipped(self, rng):
        indices = block_bootstrap_indices(20, 100, rng=rng)
        np.testing.assert_array_equal(indices, np.arange(20))

    def test_validation(self):
        with pytest.raises(ValueError):
            block_bootstrap_indices(0, 10)
        with pytest.raises(ValueError):
            block_bootstrap_indices(10, 0)
