"""Tests for the noise-regime identification diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.theory import sigma2_n_closed_form
from repro.paper import PAPER_B_FLICKER_HZ2, PAPER_B_THERMAL_HZ, PAPER_F0_HZ
from repro.phase import PhaseNoisePSD
from repro.stats.noise_identification import (
    identify_noise_from_allan,
    identify_noise_regions,
    local_log_slope,
)


class TestLocalLogSlope:
    def test_pure_power_laws(self):
        x = np.logspace(0, 4, 30)
        np.testing.assert_allclose(local_log_slope(x, 3.0 * x), 1.0, atol=1e-9)
        np.testing.assert_allclose(local_log_slope(x, 0.5 * x**2), 2.0, atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            local_log_slope(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            local_log_slope(np.array([1.0, 2.0]), np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            local_log_slope(np.array([2.0, 1.0]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            local_log_slope(np.array([1.0, 2.0]), np.array([1.0, 1.0, 1.0]))


class TestIdentifyNoiseRegions:
    @pytest.fixture(scope="class")
    def paper_theory_curve(self):
        psd = PhaseNoisePSD(PAPER_B_THERMAL_HZ, PAPER_B_FLICKER_HZ2)
        n = np.unique(np.logspace(0, 6, 60).astype(int))
        sigma2 = np.asarray(sigma2_n_closed_form(psd, PAPER_F0_HZ, n))
        return n, sigma2

    def test_paper_curve_has_both_regions(self, paper_theory_curve):
        n, sigma2 = paper_theory_curve
        regions = identify_noise_regions(n, sigma2)
        assert regions.white_fm_range is not None
        assert regions.flicker_fm_range is not None
        # Thermal dominates at small N, flicker at large N.
        assert regions.white_fm_range[0] < regions.flicker_fm_range[0]

    def test_crossover_estimate_near_k(self, paper_theory_curve):
        """The slope-1.5 crossover of the theory curve sits at N = K."""
        n, sigma2 = paper_theory_curve
        regions = identify_noise_regions(n, sigma2)
        assert regions.crossover_estimate == pytest.approx(5354.0, rel=0.2)

    def test_pure_thermal_curve_is_all_white_fm(self):
        n = np.unique(np.logspace(0, 5, 40).astype(int))
        sigma2 = 2.0 * 276.0 / PAPER_F0_HZ**3 * n
        regions = identify_noise_regions(n, sigma2)
        assert regions.dominant_regime == "white FM"
        assert regions.flicker_fm_range is None
        assert regions.crossover_estimate is None

    def test_pure_flicker_curve_is_all_flicker_fm(self):
        n = np.unique(np.logspace(0, 5, 40).astype(int))
        sigma2 = 1e-24 * n.astype(float) ** 2
        regions = identify_noise_regions(n, sigma2)
        assert regions.dominant_regime == "flicker FM"
        assert regions.white_fm_range is None

    def test_summary_mentions_regions(self, paper_theory_curve):
        n, sigma2 = paper_theory_curve
        text = identify_noise_regions(n, sigma2).summary()
        assert "white FM" in text
        assert "flicker FM" in text
        assert "crossover" in text

    def test_works_on_measured_curve(self, paper_curve):
        regions = identify_noise_regions(
            paper_curve.n_values, paper_curve.sigma2_values_s2, slope_tolerance=0.4
        )
        assert regions.white_fm_range is not None
        assert regions.white_fm_range[0] <= 10

    def test_validation(self):
        with pytest.raises(ValueError):
            identify_noise_regions([1, 2, 4], [1.0, 2.0, 4.0], slope_tolerance=0.9)


class TestIdentifyNoiseFromAllan:
    def test_white_fm_identified(self):
        tau = np.logspace(-6, -2, 20)
        avar = 1e-12 / tau
        assert identify_noise_from_allan(tau, avar) == "white FM"

    def test_flicker_fm_identified(self):
        tau = np.logspace(-6, -2, 20)
        avar = np.full_like(tau, 3e-10)
        assert identify_noise_from_allan(tau, avar) == "flicker FM"

    def test_random_walk_identified(self):
        tau = np.logspace(-6, -2, 20)
        avar = 1e-4 * tau
        assert identify_noise_from_allan(tau, avar) == "random walk FM"

    def test_white_pm_identified(self):
        tau = np.logspace(-6, -2, 20)
        avar = 1e-20 / tau**2
        assert identify_noise_from_allan(tau, avar) == "white PM"

    def test_validation(self):
        with pytest.raises(ValueError):
            identify_noise_from_allan([1.0], [1.0])
        with pytest.raises(ValueError):
            identify_noise_from_allan([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            identify_noise_from_allan([1.0, 2.0], [1.0, -1.0])
