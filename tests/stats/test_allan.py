"""Unit tests for the Allan-variance estimators and their theoretical values."""

from __future__ import annotations

import numpy as np
import pytest

from repro.noise.flicker import generate_pink_noise
from repro.stats.allan import (
    allan_deviation,
    allan_variance,
    allan_variance_curve,
    allan_variance_flicker_fm,
    allan_variance_white_fm,
    fractional_frequency_from_periods,
    octave_spaced_factors,
    sigma2_n_from_allan_variance,
)


class TestFractionalFrequency:
    def test_constant_periods_give_zero(self):
        periods = np.full(100, 1e-8)
        np.testing.assert_allclose(
            fractional_frequency_from_periods(periods, 1e-8), 0.0
        )

    def test_small_deviation_linearised(self):
        periods = np.array([1e-8 * (1 + 1e-6), 1e-8 * (1 - 1e-6)])
        y = fractional_frequency_from_periods(periods, 1e-8)
        np.testing.assert_allclose(y, [-1e-6, 1e-6], rtol=1e-3)

    def test_rejects_non_positive_periods(self):
        with pytest.raises(ValueError):
            fractional_frequency_from_periods(np.array([1e-8, 0.0]))

    def test_empty_input(self):
        assert fractional_frequency_from_periods(np.empty(0)).size == 0


class TestAllanVarianceEstimators:
    def test_white_fm_follows_h0_over_2tau(self, rng):
        """White frequency noise: sigma_y^2(tau) = h0 / (2 tau)."""
        fs = 1.0
        sigma_y = 1e-6
        y = rng.normal(0.0, sigma_y, size=200_000)
        h0 = 2.0 * sigma_y**2 / fs
        for m in (1, 4, 16):
            measured = allan_variance(y, m)
            expected = allan_variance_white_fm(h0, m / fs)
            assert measured == pytest.approx(expected, rel=0.05)

    def test_flicker_fm_is_flat_in_tau(self):
        """Flicker FM: sigma_y^2(tau) = 2 ln2 h_{-1}, independent of tau."""
        y = generate_pink_noise(2**17, rng=np.random.default_rng(3))
        values = [allan_variance(y, m) for m in (4, 16, 64)]
        expected = allan_variance_flicker_fm(1.0)
        for value in values:
            assert value == pytest.approx(expected, rel=0.35)

    def test_overlapping_and_nonoverlapping_agree_on_average(self, rng):
        y = rng.normal(0.0, 1.0, size=50_000)
        overlapping = allan_variance(y, 8, overlapping=True)
        plain = allan_variance(y, 8, overlapping=False)
        assert overlapping == pytest.approx(plain, rel=0.15)

    def test_deviation_is_square_root(self, rng):
        y = rng.normal(0.0, 1.0, size=10_000)
        assert allan_deviation(y, 4) == pytest.approx(np.sqrt(allan_variance(y, 4)))

    def test_insufficient_data_rejected(self):
        with pytest.raises(ValueError):
            allan_variance(np.ones(10), 8)

    def test_invalid_averaging_factor(self):
        with pytest.raises(ValueError):
            allan_variance(np.ones(100), 0)


class TestAllanCurveAndHelpers:
    def test_octave_factors(self):
        assert octave_spaced_factors(10) == [1, 2, 4, 8]
        with pytest.raises(ValueError):
            octave_spaced_factors(0)

    def test_curve_contains_requested_factors(self, rng):
        y = rng.normal(0.0, 1.0, size=4096)
        curve = allan_variance_curve(y, tau0_s=1e-8, averaging_factors=[1, 2, 4])
        assert [point.averaging_factor for point in curve] == [1, 2, 4]
        assert curve[1].tau_s == pytest.approx(2e-8)

    def test_curve_default_sweep(self, rng):
        y = rng.normal(0.0, 1.0, size=1024)
        curve = allan_variance_curve(y, tau0_s=1.0)
        assert len(curve) >= 5

    def test_curve_requires_positive_tau0(self, rng):
        with pytest.raises(ValueError):
            allan_variance_curve(rng.normal(size=128), tau0_s=0.0)


class TestTheory:
    def test_white_fm_theory_validation(self):
        assert allan_variance_white_fm(2e-12, 1e-3) == pytest.approx(1e-9)
        with pytest.raises(ValueError):
            allan_variance_white_fm(-1.0, 1.0)
        with pytest.raises(ValueError):
            allan_variance_white_fm(1.0, 0.0)

    def test_flicker_fm_theory_validation(self):
        assert allan_variance_flicker_fm(1.0) == pytest.approx(2.0 * np.log(2.0))
        with pytest.raises(ValueError):
            allan_variance_flicker_fm(-1.0)

    def test_paper_approximation_helper(self):
        assert sigma2_n_from_allan_variance(1e-12, 1e8) == pytest.approx(2e-28)
        with pytest.raises(ValueError):
            sigma2_n_from_allan_variance(1e-12, 0.0)
