"""Unit tests of the CI perf-regression gate (scripts/check_bench.py).

The acceptance property: the gate **fails** (non-zero exit) when a
benchmark's speedup field drops below ``min_fraction`` of its committed
baseline — demonstrated here with synthetic artifacts, so CI itself never
has to break to prove the gate works.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[1] / "scripts" / "check_bench.py"


@pytest.fixture(scope="module")
def check_bench():
    spec = importlib.util.spec_from_file_location("check_bench", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    # dataclasses resolves annotations through sys.modules at class-creation
    # time, so the module must be registered before executing it.
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        yield module
    finally:
        sys.modules.pop(spec.name, None)


@pytest.fixture()
def workspace(tmp_path):
    """A baseline dir plus a helper to drop artifact/baseline files."""
    baseline_dir = tmp_path / "baselines"
    baseline_dir.mkdir()

    def write(name: str, payload: dict, kind: str = "artifact") -> Path:
        directory = baseline_dir if kind == "baseline" else tmp_path
        path = directory / name
        path.write_text(json.dumps(payload))
        return path

    return tmp_path, baseline_dir, write


BASELINE = {
    "source": "BENCH_thing.json",
    "fields": {"speedup": {"baseline": 10.0, "min_fraction": 0.8}},
}


def run_gate(check_bench, baseline_dir, artifacts, extra=()):
    argv = [str(path) for path in artifacts]
    argv += ["--baseline-dir", str(baseline_dir), *extra]
    return check_bench.main(argv)


class TestThresholds:
    def test_passes_at_or_above_the_floor(self, check_bench, workspace):
        _, baseline_dir, write = workspace
        write("thing.json", BASELINE, kind="baseline")
        artifact = write("BENCH_thing.json", {"speedup": 8.0})
        assert run_gate(check_bench, baseline_dir, [artifact]) == 0

    def test_fails_below_80_percent_of_baseline(self, check_bench, workspace):
        _, baseline_dir, write = workspace
        write("thing.json", BASELINE, kind="baseline")
        artifact = write("BENCH_thing.json", {"speedup": 7.9})
        assert run_gate(check_bench, baseline_dir, [artifact]) == 1

    def test_fails_when_field_is_missing(self, check_bench, workspace):
        _, baseline_dir, write = workspace
        write("thing.json", BASELINE, kind="baseline")
        artifact = write("BENCH_thing.json", {"other": 1.0})
        assert run_gate(check_bench, baseline_dir, [artifact]) == 1

    def test_absolute_floor_and_equality_specs(self, check_bench, workspace):
        _, baseline_dir, write = workspace
        write(
            "thing.json",
            {
                "source": "BENCH_thing.json",
                "fields": {
                    "serial_rps": {"min": 100.0},
                    "equivalence": {"equals": "bitwise"},
                },
            },
            kind="baseline",
        )
        good = write(
            "BENCH_thing.json",
            {"serial_rps": 250.0, "equivalence": "bitwise"},
        )
        assert run_gate(check_bench, baseline_dir, [good]) == 0
        bad = write(
            "BENCH_thing.json",
            {"serial_rps": 250.0, "equivalence": "approximate"},
        )
        assert run_gate(check_bench, baseline_dir, [bad]) == 1


class TestRequirementGates:
    @pytest.fixture()
    def gated_baseline(self, workspace):
        _, baseline_dir, write = workspace
        write(
            "thing.json",
            {
                "source": "BENCH_thing.json",
                "require": {"mode": "full", "cpu_cores": {"min": 4}},
                "fields": {"speedup": {"baseline": 3.0, "min_fraction": 0.8}},
            },
            kind="baseline",
        )
        return baseline_dir, write

    def test_small_runner_skips_instead_of_failing(
        self, check_bench, gated_baseline
    ):
        baseline_dir, write = gated_baseline
        # A 2-core quick run whose speedup would fail the threshold...
        artifact = write(
            "BENCH_thing.json",
            {"mode": "quick", "cpu_cores": 2, "speedup": 0.5},
        )
        # ...is deterministically skipped, because the artifact records why.
        assert run_gate(check_bench, baseline_dir, [artifact]) == 0

    def test_eligible_runner_is_enforced(self, check_bench, gated_baseline):
        baseline_dir, write = gated_baseline
        artifact = write(
            "BENCH_thing.json",
            {"mode": "full", "cpu_cores": 8, "speedup": 0.5},
        )
        assert run_gate(check_bench, baseline_dir, [artifact]) == 1


class TestMissingArtifacts:
    def test_missing_artifact_skips_by_default(self, check_bench, workspace):
        tmp_path, baseline_dir, write = workspace
        write("thing.json", BASELINE, kind="baseline")
        missing = tmp_path / "BENCH_thing.json"  # never written
        assert run_gate(check_bench, baseline_dir, [missing]) == 0

    def test_require_all_fails_on_missing_artifact(
        self, check_bench, workspace
    ):
        tmp_path, baseline_dir, write = workspace
        write("thing.json", BASELINE, kind="baseline")
        missing = tmp_path / "BENCH_thing.json"
        assert (
            run_gate(
                check_bench, baseline_dir, [missing], extra=["--require-all"]
            )
            == 1
        )


class TestSummary:
    def test_markdown_summary_is_appended(self, check_bench, workspace):
        tmp_path, baseline_dir, write = workspace
        write("thing.json", BASELINE, kind="baseline")
        artifact = write("BENCH_thing.json", {"speedup": 12.0})
        summary = tmp_path / "step_summary.md"
        assert (
            run_gate(
                check_bench,
                baseline_dir,
                [artifact],
                extra=["--summary", str(summary)],
            )
            == 0
        )
        text = summary.read_text()
        assert "Benchmark perf gate" in text
        assert "| BENCH_thing.json | speedup | 12 |" in text
        assert "PASS" in text


class TestRepositoryBaselines:
    """The committed baselines must stay structurally valid."""

    def test_committed_baselines_load(self, check_bench):
        baseline_dir = _SCRIPT.parents[1] / "benchmarks" / "baselines"
        baselines = check_bench.load_baselines(baseline_dir)
        sources = {baseline["source"] for baseline in baselines}
        assert {
            "BENCH_bit_pipeline.json",
            "BENCH_distributed.json",
            "BENCH_distributed_bench.json",
            "BENCH_serving.json",
        } <= sources
        for baseline in baselines:
            assert baseline.get("fields"), baseline["source"]
