"""Unit tests for composite noise sources (paper Eq. 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.noise.flicker import FlickerNoiseSource
from repro.noise.sources import (
    CompositeNoiseSource,
    psd_crossover_frequency,
)
from repro.noise.thermal import ThermalNoiseSource


class TestCompositeNoiseSource:
    def test_psd_is_sum_of_components(self):
        """Eq. 1: S_ids = S_th + S_fl because the phenomena are independent."""
        thermal = ThermalNoiseSource(2e-22)
        flicker = FlickerNoiseSource(1e-18)
        composite = CompositeNoiseSource.thermal_plus_flicker(thermal, flicker)
        frequency = np.array([10.0, 1e3, 1e6])
        expected = thermal.psd(frequency) + flicker.psd(frequency)
        np.testing.assert_allclose(composite.psd(frequency), expected)

    def test_empty_composite_has_zero_psd(self):
        composite = CompositeNoiseSource()
        assert np.all(composite.psd(np.array([1.0, 2.0])) == 0.0)

    def test_add_source(self):
        composite = CompositeNoiseSource()
        composite.add(ThermalNoiseSource(1e-22))
        composite.add(ThermalNoiseSource(2e-22))
        assert composite.psd(1.0) == pytest.approx(3e-22)

    def test_scalar_input_returns_scalar(self):
        composite = CompositeNoiseSource([ThermalNoiseSource(1e-22)])
        assert isinstance(composite.psd(5.0), float)

    def test_sample_length_and_scaling(self, rng):
        thermal = ThermalNoiseSource(1e-22)
        flicker = FlickerNoiseSource(1e-20)
        composite = CompositeNoiseSource.thermal_plus_flicker(thermal, flicker)
        samples = composite.sample(4096, 1e6, rng=rng)
        assert samples.shape == (4096,)
        assert np.all(np.isfinite(samples))

    def test_sample_variance_increases_with_components(self):
        thermal = ThermalNoiseSource(1e-22)
        single = CompositeNoiseSource([thermal])
        double = CompositeNoiseSource([thermal, ThermalNoiseSource(1e-22)])
        single_samples = single.sample(50_000, 1e6, rng=np.random.default_rng(1))
        double_samples = double.sample(50_000, 1e6, rng=np.random.default_rng(1))
        assert np.var(double_samples) > np.var(single_samples)


class TestCrossover:
    def test_crossover_definition(self):
        thermal = ThermalNoiseSource(1e-22)
        flicker = FlickerNoiseSource(1e-18)
        assert psd_crossover_frequency(thermal, flicker) == pytest.approx(1e4)

    def test_crossover_requires_thermal_noise(self):
        with pytest.raises(ValueError):
            psd_crossover_frequency(ThermalNoiseSource(0.0), FlickerNoiseSource(1e-18))

    def test_psds_actually_cross_there(self):
        thermal = ThermalNoiseSource(1e-22)
        flicker = FlickerNoiseSource(1e-18)
        corner = psd_crossover_frequency(thermal, flicker)
        assert flicker.psd(corner) == pytest.approx(thermal.psd(corner))
        assert flicker.psd(corner / 10.0) > thermal.psd_a2_per_hz
        assert flicker.psd(corner * 10.0) < thermal.psd_a2_per_hz
