"""Unit tests for the technology-node library (scaling study substrate)."""

from __future__ import annotations

import pytest

from repro.noise.technology import TECHNOLOGY_LIBRARY, get_node, list_nodes


class TestLibrary:
    def test_known_nodes_present(self):
        for name in ("180nm", "130nm", "90nm", "65nm", "40nm", "28nm"):
            assert name in TECHNOLOGY_LIBRARY

    def test_list_nodes_ordered_large_to_small(self):
        nodes = list_nodes()
        sizes = [TECHNOLOGY_LIBRARY[name].feature_size_m for name in nodes]
        assert sizes == sorted(sizes, reverse=True)

    def test_get_node_roundtrip(self):
        node = get_node("65nm")
        assert node.name == "65nm"
        assert node.feature_size_m == pytest.approx(65e-9)

    def test_get_unknown_node_raises_with_hint(self):
        with pytest.raises(KeyError, match="65nm"):
            get_node("7nm")

    def test_supply_voltage_decreases_with_scaling(self):
        nodes = [get_node(name) for name in list_nodes()]
        supplies = [node.supply_voltage_v for node in nodes]
        assert supplies == sorted(supplies, reverse=True)


class TestNodeDevices:
    @pytest.mark.parametrize("name", sorted(TECHNOLOGY_LIBRARY))
    def test_devices_have_minimum_length(self, name):
        node = get_node(name)
        assert node.nmos().length_m == pytest.approx(node.feature_size_m)
        assert node.pmos().length_m == pytest.approx(node.feature_size_m)

    @pytest.mark.parametrize("name", sorted(TECHNOLOGY_LIBRARY))
    def test_inverter_builds_and_has_positive_delay(self, name):
        inverter = get_node(name).inverter()
        assert inverter.propagation_delay() > 0.0

    def test_pmos_wider_than_nmos(self):
        node = get_node("65nm")
        assert node.pmos().width_m > node.nmos().width_m

    def test_smaller_nodes_are_faster(self):
        slow = get_node("180nm").inverter().propagation_delay()
        fast = get_node("28nm").inverter().propagation_delay()
        assert fast < slow
