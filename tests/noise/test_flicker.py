"""Unit tests for the flicker-noise model and the 1/f generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.noise.flicker import (
    FlickerNoiseSource,
    flicker_corner_frequency,
    flicker_current_psd,
    generate_pink_noise,
    generate_pink_noise_batch,
)
from repro.stats.psd_estimation import fit_power_law, welch_psd


class TestFlickerCurrentPSD:
    def test_inverse_frequency_law(self):
        psd_1hz = flicker_current_psd(1.0, 1e-4, 1e-6, 100e-9, 1e-5)
        psd_10hz = flicker_current_psd(10.0, 1e-4, 1e-6, 100e-9, 1e-5)
        assert psd_1hz == pytest.approx(10.0 * psd_10hz)

    def test_quadratic_in_drain_current(self):
        low = flicker_current_psd(1.0, 1e-4, 1e-6, 100e-9, 1e-5)
        high = flicker_current_psd(1.0, 2e-4, 1e-6, 100e-9, 1e-5)
        assert high == pytest.approx(4.0 * low)

    def test_inverse_square_of_channel_length(self):
        """The scaling the paper's conclusion builds on: S_fl ~ 1/L^2."""
        long_channel = flicker_current_psd(1.0, 1e-4, 1e-6, 130e-9, 1e-5)
        short_channel = flicker_current_psd(1.0, 1e-4, 1e-6, 65e-9, 1e-5)
        assert short_channel == pytest.approx(long_channel * (130.0 / 65.0) ** 2)

    def test_inverse_width(self):
        narrow = flicker_current_psd(1.0, 1e-4, 0.5e-6, 100e-9, 1e-5)
        wide = flicker_current_psd(1.0, 1e-4, 1e-6, 100e-9, 1e-5)
        assert narrow == pytest.approx(2.0 * wide)

    def test_array_input(self):
        frequencies = np.array([1.0, 2.0, 4.0])
        values = flicker_current_psd(frequencies, 1e-4, 1e-6, 100e-9, 1e-5)
        assert values.shape == (3,)
        assert values[0] == pytest.approx(2.0 * values[1])

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError):
            flicker_current_psd(0.0, 1e-4, 1e-6, 100e-9, 1e-5)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            flicker_current_psd(1.0, 1e-4, 0.0, 100e-9, 1e-5)

    def test_corner_frequency(self):
        assert flicker_corner_frequency(1e-18, 1e-22) == pytest.approx(1e4)

    def test_corner_frequency_invalid_thermal(self):
        with pytest.raises(ValueError):
            flicker_corner_frequency(1e-18, 0.0)


class TestFlickerNoiseSource:
    def test_from_device_matches_psd_function(self):
        source = FlickerNoiseSource.from_device(1e-4, 1e-6, 100e-9, 1e-5)
        direct = flicker_current_psd(123.0, 1e-4, 1e-6, 100e-9, 1e-5)
        assert source.psd(123.0) == pytest.approx(direct)

    def test_psd_rejects_non_positive_frequency(self):
        source = FlickerNoiseSource(1e-20)
        with pytest.raises(ValueError):
            source.psd(np.array([1.0, -1.0]))

    def test_negative_coefficient_rejected(self):
        with pytest.raises(ValueError):
            FlickerNoiseSource(-1.0)

    def test_sample_scales_with_coefficient(self):
        small = FlickerNoiseSource(1e-24).sample(
            4096, 1e6, rng=np.random.default_rng(4)
        )
        large = FlickerNoiseSource(4e-24).sample(
            4096, 1e6, rng=np.random.default_rng(4)
        )
        assert np.std(large) == pytest.approx(2.0 * np.std(small), rel=1e-9)

    @pytest.mark.parametrize("sampling_rate_hz", [0.0, -1.0])
    def test_sample_rejects_non_positive_sampling_rate(self, sampling_rate_hz):
        source = FlickerNoiseSource(1e-24)
        with pytest.raises(ValueError, match="sampling rate"):
            source.sample(64, sampling_rate_hz, rng=np.random.default_rng(0))

    def test_sample_amplitude_is_sampling_rate_invariant(self):
        """1/f is scale free: the same seed gives the same path at any fs."""
        source = FlickerNoiseSource(1e-24)
        at_1hz = source.sample(512, 1.0, rng=np.random.default_rng(9))
        at_1mhz = source.sample(512, 1e6, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(at_1hz, at_1mhz)


class TestPinkNoiseGenerators:
    @pytest.mark.parametrize("method", ["spectral", "ar", "hosking"])
    def test_length_and_finiteness(self, method):
        samples = generate_pink_noise(
            2048 if method != "hosking" else 512,
            rng=np.random.default_rng(5),
            method=method,
        )
        assert np.all(np.isfinite(samples))
        assert samples.size in (2048, 512)

    def test_empty_request(self):
        assert generate_pink_noise(0).size == 0

    def test_negative_request_rejected(self):
        with pytest.raises(ValueError):
            generate_pink_noise(-1)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            generate_pink_noise(16, method="nope")

    @pytest.mark.parametrize("method", ["spectral", "ar"])
    def test_spectral_slope_is_minus_one(self, method):
        """The generated noise must have a ~1/f spectrum over the mid band."""
        samples = generate_pink_noise(
            65536, rng=np.random.default_rng(11), method=method
        )
        estimate = welch_psd(samples, sampling_rate_hz=1.0, segment_length=4096)
        band = estimate.restrict(1e-3, 1e-1)
        _amplitude, exponent = fit_power_law(band)
        assert -1.4 < exponent < -0.6

    def test_spectral_amplitude_near_unity(self):
        """The spectral method is normalised to a one-sided PSD of ~1/f."""
        samples = generate_pink_noise(65536, rng=np.random.default_rng(13))
        estimate = welch_psd(samples, sampling_rate_hz=1.0, segment_length=8192)
        band = estimate.restrict(2e-3, 5e-2)
        amplitude, _exponent = fit_power_law(band)
        assert 0.6 < amplitude < 1.6

    def test_spectral_reproducibility(self):
        first = generate_pink_noise(1024, rng=np.random.default_rng(21))
        second = generate_pink_noise(1024, rng=np.random.default_rng(21))
        np.testing.assert_array_equal(first, second)

    def test_zero_mean(self):
        samples = generate_pink_noise(32768, rng=np.random.default_rng(31))
        assert abs(np.mean(samples)) < 0.5

    def test_hosking_spectral_slope_is_minus_one(self):
        """Regression for the in-place Durbin aliasing bug: with the update
        reading already-overwritten coefficients, the predictor was corrupted
        for every order above 2 and the spectrum drifted off the 1/f law."""
        samples = generate_pink_noise(
            4096, rng=np.random.default_rng(17), method="hosking"
        )
        estimate = welch_psd(samples, sampling_rate_hz=1.0, segment_length=1024)
        band = estimate.restrict(4e-3, 1e-1)
        _amplitude, exponent = fit_power_law(band)
        assert -1.4 < exponent < -0.6

    def test_hosking_matches_explicit_durbin_reference(self):
        """The vectorised Durbin update must equal the textbook double loop
        that reads all previous-order coefficients before writing any."""

        def reference(n_samples, rng):
            d = 0.4999
            white = rng.normal(0.0, 1.0, size=n_samples)
            output = np.empty(n_samples)
            phi = np.empty(n_samples)
            variance = 1.0
            output[0] = white[0]
            for t in range(1, n_samples):
                phi[t - 1] = d / t
                previous = [phi[j] for j in range(t - 1)]
                for j in range(t - 1):
                    phi[j] = previous[j] - phi[t - 1] * previous[t - 2 - j]
                variance *= 1.0 - phi[t - 1] ** 2
                mean = np.dot(phi[:t], output[t - 1 :: -1][:t])
                output[t] = mean + np.sqrt(max(variance, 0.0)) * white[t]
            scale = np.sqrt(np.log(max(n_samples, 2)) / 2.0)
            std = np.std(output)
            if std > 0.0:
                output = output / std * scale
            return output

        actual = generate_pink_noise(
            128, rng=np.random.default_rng(23), method="hosking"
        )
        expected = reference(128, np.random.default_rng(23))
        np.testing.assert_array_equal(actual, expected)


class TestPinkNoiseBatch:
    """generate_pink_noise_batch: row i == scalar generate_pink_noise(rngs[i])."""

    def test_spectral_rows_match_scalar(self):
        rngs = np.random.default_rng(6).spawn(3)
        batched = generate_pink_noise_batch(512, rngs)
        reference = np.random.default_rng(6).spawn(3)
        for row in range(3):
            np.testing.assert_allclose(
                batched[row],
                generate_pink_noise(512, rng=reference[row]),
                rtol=0.0,
                atol=0.0,
            )

    def test_ar_rows_match_scalar(self):
        rngs = np.random.default_rng(7).spawn(2)
        batched = generate_pink_noise_batch(128, rngs, method="ar")
        reference = np.random.default_rng(7).spawn(2)
        for row in range(2):
            np.testing.assert_array_equal(
                batched[row], generate_pink_noise(128, rng=reference[row], method="ar")
            )

    def test_empty_inputs(self):
        assert generate_pink_noise_batch(16, []).shape == (0, 16)
        rngs = [np.random.default_rng(0)]
        assert generate_pink_noise_batch(0, rngs).shape == (1, 0)
        with pytest.raises(ValueError):
            generate_pink_noise_batch(-1, rngs)
