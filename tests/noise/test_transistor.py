"""Unit tests for the MOS transistor and inverter-cell models."""

from __future__ import annotations

import pytest

from repro.noise.transistor import InverterCell, MOSTransistor


@pytest.fixture
def nmos() -> MOSTransistor:
    return MOSTransistor(
        width_m=260e-9,
        length_m=65e-9,
        kp_a_per_v2=350e-6,
        vth_v=0.35,
        flicker_alpha=1.8e-5,
    )


@pytest.fixture
def pmos() -> MOSTransistor:
    return MOSTransistor(
        width_m=520e-9,
        length_m=65e-9,
        kp_a_per_v2=130e-6,
        vth_v=0.35,
        flicker_alpha=1.8e-5,
        is_nmos=False,
    )


@pytest.fixture
def inverter(nmos: MOSTransistor, pmos: MOSTransistor) -> InverterCell:
    return InverterCell(
        nmos=nmos, pmos=pmos, load_capacitance_f=3.5e-15, supply_voltage_v=1.2
    )


class TestMOSTransistor:
    def test_aspect_ratio(self, nmos):
        assert nmos.aspect_ratio == pytest.approx(4.0)

    def test_square_law_round_trip(self, nmos):
        """overdrive_for_current inverts saturation_current."""
        current = nmos.saturation_current(0.3)
        assert nmos.overdrive_for_current(current) == pytest.approx(0.3)

    def test_transconductance_consistent_with_square_law(self, nmos):
        """gm = dId/dVov = k' (W/L) Vov must match the analytic expression."""
        overdrive = 0.25
        current = nmos.saturation_current(overdrive)
        expected_gm = nmos.kp_a_per_v2 * nmos.aspect_ratio * overdrive
        assert nmos.transconductance(current) == pytest.approx(expected_gm, rel=1e-9)

    def test_transconductance_grows_with_current(self, nmos):
        assert nmos.transconductance(2e-4) > nmos.transconductance(1e-4)

    def test_thermal_psd_positive(self, nmos):
        assert nmos.thermal_noise_psd(1e-4) > 0.0

    def test_flicker_psd_inverse_f(self, nmos):
        assert nmos.flicker_noise_psd(1.0, 1e-4) == pytest.approx(
            10.0 * nmos.flicker_noise_psd(10.0, 1e-4)
        )

    def test_flicker_corner_positive(self, nmos):
        assert nmos.flicker_corner_hz(1e-4) > 0.0

    def test_sources_match_psds(self, nmos):
        thermal = nmos.thermal_source(1e-4)
        flicker = nmos.flicker_source(1e-4)
        assert thermal.psd_a2_per_hz == pytest.approx(nmos.thermal_noise_psd(1e-4))
        assert flicker.psd(2.0) == pytest.approx(nmos.flicker_noise_psd(2.0, 1e-4))

    def test_scaling_increases_flicker_relative_to_thermal(self, nmos):
        """Shrinking the device must raise the flicker corner (paper conclusion)."""
        shrunk = nmos.scaled(2.0)
        assert shrunk.length_m == pytest.approx(nmos.length_m / 2.0)
        assert shrunk.flicker_corner_hz(1e-4) > nmos.flicker_corner_hz(1e-4)

    def test_invalid_shrink_factor(self, nmos):
        with pytest.raises(ValueError):
            nmos.scaled(0.0)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            MOSTransistor(0.0, 65e-9, 350e-6, 0.35, 1e-5)

    def test_negative_current_rejected(self, nmos):
        with pytest.raises(ValueError):
            nmos.transconductance(-1.0)


class TestInverterCell:
    def test_switching_current_positive(self, inverter):
        assert inverter.switching_current() > 0.0

    def test_propagation_delay_positive_and_reasonable(self, inverter):
        delay = inverter.propagation_delay()
        assert 1e-13 < delay < 1e-9

    def test_delay_scales_with_load(self, inverter, nmos, pmos):
        heavier = InverterCell(nmos, pmos, 7e-15, 1.2)
        assert heavier.propagation_delay() == pytest.approx(
            2.0 * inverter.propagation_delay()
        )

    def test_total_thermal_psd_is_sum_of_devices(self, inverter):
        current = inverter.switching_current()
        expected = inverter.nmos.thermal_noise_psd(
            current
        ) + inverter.pmos.thermal_noise_psd(current)
        assert inverter.total_thermal_psd() == pytest.approx(expected)

    def test_total_flicker_coefficient_is_sum_of_devices(self, inverter):
        current = inverter.switching_current()
        expected = float(
            inverter.nmos.flicker_noise_psd(1.0, current)
        ) + float(inverter.pmos.flicker_noise_psd(1.0, current))
        assert inverter.total_flicker_coefficient() == pytest.approx(expected)

    def test_invalid_load_rejected(self, nmos, pmos):
        with pytest.raises(ValueError):
            InverterCell(nmos, pmos, 0.0, 1.2)

    def test_invalid_supply_rejected(self, nmos, pmos):
        with pytest.raises(ValueError):
            InverterCell(nmos, pmos, 3e-15, 0.0)
