"""Unit tests for the thermal-noise model (paper Section III-A, first PSD)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import BOLTZMANN_K, DEFAULT_TEMPERATURE_K
from repro.noise.thermal import (
    LONG_CHANNEL_GAMMA,
    ThermalNoiseSource,
    resistor_thermal_voltage_psd,
    thermal_current_psd,
)


class TestThermalCurrentPSD:
    def test_matches_paper_expression(self):
        """The default gamma reproduces the paper's (8/3) k T gm expression."""
        gm = 1e-3
        expected = 8.0 / 3.0 * BOLTZMANN_K * DEFAULT_TEMPERATURE_K * gm
        assert thermal_current_psd(gm) == pytest.approx(expected, rel=1e-12)

    def test_linear_in_gm(self):
        assert thermal_current_psd(2e-3) == pytest.approx(
            2.0 * thermal_current_psd(1e-3)
        )

    def test_linear_in_temperature(self):
        cold = thermal_current_psd(1e-3, temperature_k=150.0)
        hot = thermal_current_psd(1e-3, temperature_k=300.0)
        assert hot == pytest.approx(2.0 * cold)

    def test_zero_gm_gives_zero_psd(self):
        assert thermal_current_psd(0.0) == 0.0

    def test_negative_gm_rejected(self):
        with pytest.raises(ValueError):
            thermal_current_psd(-1e-3)

    def test_non_positive_temperature_rejected(self):
        with pytest.raises(ValueError):
            thermal_current_psd(1e-3, temperature_k=0.0)

    def test_non_positive_gamma_rejected(self):
        with pytest.raises(ValueError):
            thermal_current_psd(1e-3, gamma=0.0)

    def test_short_channel_gamma_increases_noise(self):
        long_channel = thermal_current_psd(1e-3, gamma=LONG_CHANNEL_GAMMA)
        short_channel = thermal_current_psd(1e-3, gamma=1.3)
        assert short_channel > long_channel


class TestResistorNoise:
    def test_4ktr(self):
        expected = 4.0 * BOLTZMANN_K * DEFAULT_TEMPERATURE_K * 1e3
        assert resistor_thermal_voltage_psd(1e3) == pytest.approx(expected)

    def test_negative_resistance_rejected(self):
        with pytest.raises(ValueError):
            resistor_thermal_voltage_psd(-1.0)


class TestThermalNoiseSource:
    def test_from_transconductance(self):
        source = ThermalNoiseSource.from_transconductance(1e-3)
        assert source.psd_a2_per_hz == pytest.approx(thermal_current_psd(1e-3))

    def test_psd_is_flat(self):
        source = ThermalNoiseSource(1e-22)
        values = source.psd(np.array([1.0, 1e3, 1e6, 1e9]))
        assert np.allclose(values, 1e-22)

    def test_negative_psd_rejected(self):
        with pytest.raises(ValueError):
            ThermalNoiseSource(-1.0)

    def test_sample_variance_matches_band_limited_integral(self):
        source = ThermalNoiseSource(2e-22)
        assert source.sample_variance(1e9) == pytest.approx(2e-22 * 1e9 / 2.0)

    def test_sample_statistics(self, rng):
        source = ThermalNoiseSource(1e-22)
        samples = source.sample(200_000, sampling_rate_hz=1e9, rng=rng)
        expected_std = np.sqrt(source.sample_variance(1e9))
        assert np.mean(samples) == pytest.approx(0.0, abs=5 * expected_std / np.sqrt(200_000))
        assert np.std(samples) == pytest.approx(expected_std, rel=0.02)

    def test_sample_count_and_reproducibility(self):
        source = ThermalNoiseSource(1e-22)
        first = source.sample(100, 1e9, rng=np.random.default_rng(1))
        second = source.sample(100, 1e9, rng=np.random.default_rng(1))
        assert first.shape == (100,)
        np.testing.assert_array_equal(first, second)

    def test_zero_samples(self):
        source = ThermalNoiseSource(1e-22)
        assert source.sample(0, 1e9).size == 0

    def test_invalid_sampling_rate(self):
        source = ThermalNoiseSource(1e-22)
        with pytest.raises(ValueError):
            source.sample_variance(0.0)

    def test_negative_sample_count_rejected(self):
        source = ThermalNoiseSource(1e-22)
        with pytest.raises(ValueError):
            source.sample(-1, 1e9)
