"""Tests for the EM harmonic-injection attack model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.em_injection import EMInjectionAttack, EMInjectionParameters
from repro.measurement.capture import relative_jitter_record
from repro.oscillator.period_model import JitteryClock
from repro.phase.psd import PhaseNoisePSD


def oscillator_pair(seed: int = 0):
    psd = PhaseNoisePSD(b_thermal_hz=1e4, b_flicker_hz2=0.0)
    rng = np.random.default_rng(seed)
    return (
        JitteryClock(103e6, psd, rng=rng),
        JitteryClock(103e6, psd, rng=rng),
    )


class TestParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            EMInjectionParameters(coupling=1.5)
        with pytest.raises(ValueError):
            EMInjectionParameters(coupling=0.5, modulation_fraction=-1.0)
        with pytest.raises(ValueError):
            EMInjectionParameters(coupling=0.5, modulation_frequency_hz=0.0)


class TestCoupling:
    def test_attacked_pair_exposes_clock_interface(self):
        osc1, osc2 = oscillator_pair()
        attack = EMInjectionAttack(osc1, osc2, EMInjectionParameters(coupling=0.5))
        a1, a2 = attack.attacked_pair()
        assert a1.f0_hz == pytest.approx(osc1.f0_hz)
        assert a2.periods(100).shape == (100,)
        assert np.all(np.diff(a1.edge_times(100)) > 0.0)

    def test_zero_coupling_preserves_relative_jitter(self):
        osc1, osc2 = oscillator_pair(seed=1)
        ref1, ref2 = oscillator_pair(seed=1)
        attack = EMInjectionAttack(osc1, osc2, EMInjectionParameters(coupling=0.0))
        a1, a2 = attack.attacked_pair()
        attacked_record = relative_jitter_record(a1, a2, 40_000)
        free_record = relative_jitter_record(ref1, ref2, 40_000)
        assert np.var(attacked_record) == pytest.approx(np.var(free_record), rel=0.1)

    def test_strong_coupling_collapses_relative_jitter(self):
        osc1, osc2 = oscillator_pair(seed=2)
        ref1, ref2 = oscillator_pair(seed=2)
        attack = EMInjectionAttack(osc1, osc2, EMInjectionParameters(coupling=0.95))
        a1, a2 = attack.attacked_pair()
        attacked = relative_jitter_record(a1, a2, 40_000)
        free = relative_jitter_record(ref1, ref2, 40_000)
        attacked_jitter = attacked - np.mean(attacked)
        free_jitter = free - np.mean(free)
        assert np.var(attacked_jitter) < 0.15 * np.var(free_jitter)

    def test_coupling_scales_variance_linearly(self):
        osc1, osc2 = oscillator_pair(seed=3)
        ref1, ref2 = oscillator_pair(seed=3)
        coupling = 0.5
        attack = EMInjectionAttack(
            osc1, osc2, EMInjectionParameters(coupling=coupling)
        )
        a1, a2 = attack.attacked_pair()
        attacked = relative_jitter_record(a1, a2, 80_000)
        free = relative_jitter_record(ref1, ref2, 80_000)
        ratio = np.var(attacked - np.mean(attacked)) / np.var(free - np.mean(free))
        assert ratio == pytest.approx(1.0 - coupling, rel=0.08)


class TestModulation:
    def test_injected_tone_is_deterministic_and_periodic(self):
        """The injected harmonic shows up as a single spectral tone on each
        attacked clock — deterministic structure, not fresh randomness."""
        osc1, osc2 = oscillator_pair(seed=4)
        attack = EMInjectionAttack(
            osc1,
            osc2,
            EMInjectionParameters(
                coupling=1.0, modulation_fraction=1e-2, modulation_frequency_hz=1e6
            ),
        )
        a1, _a2 = attack.attacked_pair()
        periods = a1.periods(20_000)
        centred = periods - np.mean(periods)
        spectrum = np.abs(np.fft.rfft(centred))
        assert spectrum.max() > 50.0 * np.median(spectrum[1:])

    def test_negative_period_count_rejected(self):
        osc1, osc2 = oscillator_pair(seed=5)
        attack = EMInjectionAttack(osc1, osc2, EMInjectionParameters(coupling=0.5))
        a1, _a2 = attack.attacked_pair()
        with pytest.raises(ValueError):
            a1.periods(-1)

    def test_chunked_periods_equal_concatenated(self):
        """Chunked periods() == one concatenated call, bitwise, per clock.

        Full coupling suppresses the rings' independent jitter, so the
        output is the deterministic field modulation alone — the equality
        pins the per-clock ``_phase_index`` chunking contract exactly.
        """
        parameters = EMInjectionParameters(
            coupling=1.0, modulation_fraction=1e-2, modulation_frequency_hz=1e6
        )

        def build():
            osc1, osc2 = oscillator_pair(seed=6)
            return EMInjectionAttack(
                osc1, osc2, parameters, rng=np.random.default_rng(31)
            ).attacked_pair()

        chunked_pair, monolithic_pair = build(), build()
        for chunked, monolithic in zip(chunked_pair, monolithic_pair):
            parts = np.concatenate([chunked.periods(137), chunked.periods(263)])
            whole = monolithic.periods(400)
            np.testing.assert_array_equal(parts, whole)

    def test_chunked_periods_equal_concatenated_with_jitter(self):
        """The chunking contract holds through the victims' jitter too."""
        parameters = EMInjectionParameters(
            coupling=0.5, modulation_fraction=1e-2, modulation_frequency_hz=1e6
        )

        def build():
            osc1, osc2 = oscillator_pair(seed=6)
            return EMInjectionAttack(
                osc1, osc2, parameters, rng=np.random.default_rng(31)
            ).attacked_pair()

        chunked_pair, monolithic_pair = build(), build()
        # Interleave the two clocks' chunked calls the way a sampler would.
        parts = [
            np.concatenate([clock.periods(100), clock.periods(300)])
            for clock in chunked_pair
        ]
        wholes = [clock.periods(400) for clock in monolithic_pair]
        for part, whole in zip(parts, wholes):
            np.testing.assert_array_equal(part, whole)


class TestSeededReproducibility:
    """The ``rng`` argument must actually drive the attack's randomness.

    Regression tests for the bug where the constructor accepted and stored
    ``rng`` but never consumed it, so seeding the attack had no effect and
    the injected field always started at phase zero.
    """

    PARAMETERS = EMInjectionParameters(
        coupling=1.0, modulation_fraction=1e-2, modulation_frequency_hz=1e6
    )

    def _periods(self, attack_rng):
        osc1, osc2 = oscillator_pair(seed=8)
        a1, a2 = EMInjectionAttack(
            osc1, osc2, self.PARAMETERS, rng=attack_rng
        ).attacked_pair()
        return a1.periods(2_000), a2.periods(2_000)

    def test_same_seed_reproduces_bitwise(self):
        first = self._periods(np.random.default_rng(42))
        second = self._periods(np.random.default_rng(42))
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])

    def test_different_seeds_differ(self):
        first = self._periods(np.random.default_rng(42))
        second = self._periods(np.random.default_rng(43))
        assert not np.array_equal(first[0], second[0])

    def test_construction_consumes_the_generator(self):
        shared = np.random.default_rng(42)
        first = self._periods(shared)
        second = self._periods(shared)
        assert not np.array_equal(first[0], second[0])

    def test_both_clocks_share_one_field_phase(self):
        # Same f0 on both rings: a shared field phase makes the two clocks'
        # modulation waveforms identical under full coupling.
        first, second = self._periods(np.random.default_rng(42))
        np.testing.assert_allclose(
            first - np.mean(first), second - np.mean(second), atol=1e-18
        )
