"""Tests for the EM harmonic-injection attack model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.em_injection import EMInjectionAttack, EMInjectionParameters
from repro.measurement.capture import relative_jitter_record
from repro.oscillator.period_model import JitteryClock
from repro.phase.psd import PhaseNoisePSD


def oscillator_pair(seed: int = 0):
    psd = PhaseNoisePSD(b_thermal_hz=1e4, b_flicker_hz2=0.0)
    rng = np.random.default_rng(seed)
    return (
        JitteryClock(103e6, psd, rng=rng),
        JitteryClock(103e6, psd, rng=rng),
    )


class TestParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            EMInjectionParameters(coupling=1.5)
        with pytest.raises(ValueError):
            EMInjectionParameters(coupling=0.5, modulation_fraction=-1.0)
        with pytest.raises(ValueError):
            EMInjectionParameters(coupling=0.5, modulation_frequency_hz=0.0)


class TestCoupling:
    def test_attacked_pair_exposes_clock_interface(self):
        osc1, osc2 = oscillator_pair()
        attack = EMInjectionAttack(osc1, osc2, EMInjectionParameters(coupling=0.5))
        a1, a2 = attack.attacked_pair()
        assert a1.f0_hz == pytest.approx(osc1.f0_hz)
        assert a2.periods(100).shape == (100,)
        assert np.all(np.diff(a1.edge_times(100)) > 0.0)

    def test_zero_coupling_preserves_relative_jitter(self):
        osc1, osc2 = oscillator_pair(seed=1)
        ref1, ref2 = oscillator_pair(seed=1)
        attack = EMInjectionAttack(osc1, osc2, EMInjectionParameters(coupling=0.0))
        a1, a2 = attack.attacked_pair()
        attacked_record = relative_jitter_record(a1, a2, 40_000)
        free_record = relative_jitter_record(ref1, ref2, 40_000)
        assert np.var(attacked_record) == pytest.approx(np.var(free_record), rel=0.1)

    def test_strong_coupling_collapses_relative_jitter(self):
        osc1, osc2 = oscillator_pair(seed=2)
        ref1, ref2 = oscillator_pair(seed=2)
        attack = EMInjectionAttack(osc1, osc2, EMInjectionParameters(coupling=0.95))
        a1, a2 = attack.attacked_pair()
        attacked = relative_jitter_record(a1, a2, 40_000)
        free = relative_jitter_record(ref1, ref2, 40_000)
        attacked_jitter = attacked - np.mean(attacked)
        free_jitter = free - np.mean(free)
        assert np.var(attacked_jitter) < 0.15 * np.var(free_jitter)

    def test_coupling_scales_variance_linearly(self):
        osc1, osc2 = oscillator_pair(seed=3)
        ref1, ref2 = oscillator_pair(seed=3)
        coupling = 0.5
        attack = EMInjectionAttack(
            osc1, osc2, EMInjectionParameters(coupling=coupling)
        )
        a1, a2 = attack.attacked_pair()
        attacked = relative_jitter_record(a1, a2, 80_000)
        free = relative_jitter_record(ref1, ref2, 80_000)
        ratio = np.var(attacked - np.mean(attacked)) / np.var(free - np.mean(free))
        assert ratio == pytest.approx(1.0 - coupling, rel=0.08)


class TestModulation:
    def test_injected_tone_is_deterministic_and_periodic(self):
        """The injected harmonic shows up as a single spectral tone on each
        attacked clock — deterministic structure, not fresh randomness."""
        osc1, osc2 = oscillator_pair(seed=4)
        attack = EMInjectionAttack(
            osc1,
            osc2,
            EMInjectionParameters(
                coupling=1.0, modulation_fraction=1e-2, modulation_frequency_hz=1e6
            ),
        )
        a1, _a2 = attack.attacked_pair()
        periods = a1.periods(20_000)
        centred = periods - np.mean(periods)
        spectrum = np.abs(np.fft.rfft(centred))
        assert spectrum.max() > 50.0 * np.median(spectrum[1:])

    def test_negative_period_count_rejected(self):
        osc1, osc2 = oscillator_pair(seed=5)
        attack = EMInjectionAttack(osc1, osc2, EMInjectionParameters(coupling=0.5))
        a1, _a2 = attack.attacked_pair()
        with pytest.raises(ValueError):
            a1.periods(-1)
