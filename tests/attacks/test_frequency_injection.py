"""Tests for the frequency-injection attack model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.frequency_injection import (
    FrequencyInjectionAttack,
    InjectionParameters,
)
from repro.oscillator.period_model import JitteryClock
from repro.phase.psd import PhaseNoisePSD


@pytest.fixture
def victim(rng):
    return JitteryClock(103e6, PhaseNoisePSD(b_thermal_hz=1e4, b_flicker_hz2=0.0), rng=rng)


class TestInjectionParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            InjectionParameters(0.0, 0.5)
        with pytest.raises(ValueError):
            InjectionParameters(1e8, 1.5)
        with pytest.raises(ValueError):
            InjectionParameters(1e8, 0.5, deterministic_modulation_fraction=-0.1)


class TestFrequencyPulling:
    def test_no_locking_keeps_victim_frequency(self, victim):
        attack = FrequencyInjectionAttack(victim, InjectionParameters(105e6, 0.0))
        assert attack.f0_hz == pytest.approx(victim.f0_hz)

    def test_full_locking_adopts_injection_frequency(self, victim):
        attack = FrequencyInjectionAttack(victim, InjectionParameters(105e6, 1.0))
        assert attack.f0_hz == pytest.approx(105e6)

    def test_partial_locking_interpolates(self, victim):
        attack = FrequencyInjectionAttack(victim, InjectionParameters(105e6, 0.5))
        assert victim.f0_hz < attack.f0_hz < 105e6


class TestJitterSuppression:
    def test_locking_reduces_jitter_variance(self, victim):
        free = victim.periods(50_000)
        attack = FrequencyInjectionAttack(
            victim, InjectionParameters(victim.f0_hz, 0.9)
        )
        locked = attack.periods(50_000)
        assert np.var(locked - np.mean(locked)) < 0.2 * np.var(free - np.mean(free))

    def test_full_lock_removes_random_jitter(self, victim):
        attack = FrequencyInjectionAttack(
            victim, InjectionParameters(victim.f0_hz, 1.0)
        )
        periods = attack.periods(1000)
        assert np.ptp(periods) == pytest.approx(0.0, abs=1e-18)

    def test_suppression_factor_is_sqrt_one_minus_strength(self, rng):
        psd = PhaseNoisePSD(1e4, 0.0)
        victim_a = JitteryClock(103e6, psd, rng=np.random.default_rng(3))
        victim_b = JitteryClock(103e6, psd, rng=np.random.default_rng(3))
        strength = 0.75
        attack = FrequencyInjectionAttack(
            victim_b, InjectionParameters(103e6, strength)
        )
        free = victim_a.periods(80_000)
        locked = attack.periods(80_000)
        ratio = np.var(locked - np.mean(locked)) / np.var(free - np.mean(free))
        assert ratio == pytest.approx(1.0 - strength, rel=0.05)


class TestDeterministicModulation:
    def test_modulation_adds_beat_pattern(self, victim):
        attack = FrequencyInjectionAttack(
            victim,
            InjectionParameters(
                victim.f0_hz * 1.001,
                locking_strength=1.0,
                deterministic_modulation_fraction=1e-3,
            ),
        )
        periods = attack.periods(10_000)
        assert np.ptp(periods) > 0.0
        # The modulation is periodic, not random: the spectrum is a single tone.
        centred = periods - np.mean(periods)
        spectrum = np.abs(np.fft.rfft(centred))
        assert spectrum.max() > 20.0 * np.median(spectrum[1:])

    def test_modulation_phase_continues_across_calls(self, victim):
        attack = FrequencyInjectionAttack(
            victim,
            InjectionParameters(
                victim.f0_hz * 1.001,
                locking_strength=1.0,
                deterministic_modulation_fraction=1e-3,
            ),
        )
        first = attack.periods(100)
        second = attack.periods(100)
        assert not np.array_equal(first, second)

    def test_chunked_periods_equal_concatenated(self, victim):
        """Two chunked periods() calls == one concatenated call, bitwise.

        Full lock suppresses the victim's random jitter entirely, so the
        output is the deterministic beat modulation alone — the equality
        pins the ``_phase_index`` chunking contract exactly.
        """
        parameters = InjectionParameters(
            victim.f0_hz * 1.001,
            locking_strength=1.0,
            deterministic_modulation_fraction=1e-3,
        )
        chunked = FrequencyInjectionAttack(
            victim, parameters, rng=np.random.default_rng(21)
        )
        monolithic = FrequencyInjectionAttack(
            victim, parameters, rng=np.random.default_rng(21)
        )
        parts = np.concatenate([chunked.periods(137), chunked.periods(263)])
        whole = monolithic.periods(400)
        np.testing.assert_array_equal(parts, whole)

    def test_chunked_periods_equal_concatenated_with_jitter(self):
        """The chunking contract holds through the victim's jitter too."""
        psd = PhaseNoisePSD(b_thermal_hz=1e4, b_flicker_hz2=0.0)
        parameters = InjectionParameters(
            103e6 * 1.001,
            locking_strength=0.5,
            deterministic_modulation_fraction=1e-3,
        )

        def build():
            victim = JitteryClock(103e6, psd, rng=np.random.default_rng(5))
            return FrequencyInjectionAttack(
                victim, parameters, rng=np.random.default_rng(21)
            )

        chunked, monolithic = build(), build()
        parts = np.concatenate([chunked.periods(100), chunked.periods(300)])
        whole = monolithic.periods(400)
        np.testing.assert_array_equal(parts, whole)

    def test_edge_times_monotonic(self, victim):
        attack = FrequencyInjectionAttack(
            victim, InjectionParameters(victim.f0_hz, 0.5)
        )
        assert np.all(np.diff(attack.edge_times(1000)) > 0.0)

    def test_negative_period_count_rejected(self, victim):
        attack = FrequencyInjectionAttack(victim, InjectionParameters(1e8, 0.5))
        with pytest.raises(ValueError):
            attack.periods(-1)


class TestSeededReproducibility:
    """The ``rng`` argument must actually drive the attack's randomness.

    Regression tests for the bug where the constructor accepted and stored
    ``rng`` but never consumed it, so seeding an attack had no effect and
    every attack started its beat modulation at phase zero.
    """

    PARAMETERS = InjectionParameters(
        103e6 * 1.001,
        locking_strength=1.0,
        deterministic_modulation_fraction=1e-3,
    )

    def _attack(self, attack_rng):
        victim = JitteryClock(
            103e6,
            PhaseNoisePSD(b_thermal_hz=1e4, b_flicker_hz2=0.0),
            rng=np.random.default_rng(7),
        )
        return FrequencyInjectionAttack(victim, self.PARAMETERS, rng=attack_rng)

    def test_same_seed_reproduces_bitwise(self):
        first = self._attack(np.random.default_rng(42)).periods(2_000)
        second = self._attack(np.random.default_rng(42)).periods(2_000)
        np.testing.assert_array_equal(first, second)

    def test_different_seeds_differ(self):
        first = self._attack(np.random.default_rng(42)).periods(2_000)
        second = self._attack(np.random.default_rng(43)).periods(2_000)
        assert not np.array_equal(first, second)

    def test_construction_consumes_the_generator(self):
        # The random injection phase must be drawn from the provided rng —
        # two attacks fed the *same* generator object see different stream
        # positions and therefore different onset phases.
        shared = np.random.default_rng(42)
        first = self._attack(shared).periods(2_000)
        second = self._attack(shared).periods(2_000)
        assert not np.array_equal(first, second)
