"""Property-based tests of the post-processing blocks and bit utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trng.postprocessing import (
    bias,
    parity_filter,
    von_neumann,
    xor_decimation,
)

bit_lists = st.lists(st.integers(min_value=0, max_value=1), min_size=0, max_size=512)
nonempty_bit_lists = st.lists(
    st.integers(min_value=0, max_value=1), min_size=1, max_size=512
)


class TestVonNeumannProperties:
    @given(bits=bit_lists)
    @settings(max_examples=200, deadline=None)
    def test_output_is_binary_and_shorter(self, bits):
        output = von_neumann(np.asarray(bits, dtype=int))
        assert output.size <= len(bits) // 2
        assert set(np.unique(output)).issubset({0, 1})

    @given(bits=bit_lists)
    @settings(max_examples=200, deadline=None)
    def test_output_equals_second_bit_of_discordant_pairs(self, bits):
        array = np.asarray(bits, dtype=int)
        output = von_neumann(array)
        expected = [
            array[index + 1]
            for index in range(0, len(bits) - 1, 2)
            if array[index] != array[index + 1]
        ]
        np.testing.assert_array_equal(output, expected)

    @given(bits=bit_lists)
    @settings(max_examples=100, deadline=None)
    def test_complementing_input_complements_output(self, bits):
        array = np.asarray(bits, dtype=int)
        direct = von_neumann(array)
        complemented = von_neumann(1 - array)
        np.testing.assert_array_equal(complemented, 1 - direct)


class TestXorAndParityProperties:
    @given(bits=bit_lists, factor=st.integers(min_value=1, max_value=8))
    @settings(max_examples=200, deadline=None)
    def test_xor_decimation_length_and_values(self, bits, factor):
        output = xor_decimation(np.asarray(bits, dtype=int), factor)
        assert output.size == len(bits) // factor
        assert set(np.unique(output)).issubset({0, 1})

    @given(bits=nonempty_bit_lists)
    @settings(max_examples=200, deadline=None)
    def test_xor_factor_one_is_identity(self, bits):
        array = np.asarray(bits, dtype=int)
        np.testing.assert_array_equal(xor_decimation(array, 1), array)

    @given(bits=bit_lists, factor=st.integers(min_value=1, max_value=8))
    @settings(max_examples=200, deadline=None)
    def test_xor_matches_block_sum_parity(self, bits, factor):
        array = np.asarray(bits, dtype=int)
        output = xor_decimation(array, factor)
        for block_index in range(output.size):
            block = array[block_index * factor : (block_index + 1) * factor]
            assert output[block_index] == block.sum() % 2

    @given(bits=bit_lists, order=st.integers(min_value=1, max_value=8))
    @settings(max_examples=200, deadline=None)
    def test_parity_filter_length(self, bits, order):
        output = parity_filter(np.asarray(bits, dtype=int), order)
        expected = max(len(bits) - order + 1, 0) if len(bits) >= order else 0
        assert output.size == expected


class TestBiasProperties:
    @given(bits=nonempty_bit_lists)
    @settings(max_examples=200, deadline=None)
    def test_bias_is_bounded(self, bits):
        value = bias(np.asarray(bits, dtype=int))
        assert -0.5 <= value <= 0.5

    @given(bits=nonempty_bit_lists)
    @settings(max_examples=200, deadline=None)
    def test_bias_antisymmetry_under_complement(self, bits):
        array = np.asarray(bits, dtype=int)
        assert bias(1 - array) == pytest.approx(-bias(array), abs=1e-12)
