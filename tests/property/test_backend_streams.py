"""Randomized-seed determinism: the spawn-tree contract across all layers.

ISSUE 5 satellite: drive ~50 randomized root seeds through backend x
shard-count {1, 3} x coalesced-vs-solo serving and assert **identical
outputs** everywhere.  This locks the engine's ``SeedSequence`` spawn-tree
contract end to end: a result is a function of (seed, parameters) alone —
never of the backend executing the kernel, the shard layout re-deriving the
streams, or the batch companions a request was coalesced with.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.engine.campaign import batched_sigma2_n_campaign
from repro.engine.distributed import (
    SerialExecutor,
    Sigma2NCampaignSpec,
    run_campaign,
)
from repro.serving import BitsRequest, ServiceConfig, TRNGService
from repro.serving.scatter import run_bits_batch

#: ~50 root seeds, derived deterministically so failures replay exactly.
SEEDS = [int(word) for word in np.random.SeedSequence(20140324).generate_state(50)]

#: Candidate backends (threaded:2 exercises real thread handoff even on
#: single-core CI runners; equivalence is worker-count independent).
BACKENDS = ("numpy", "threaded:2")

SHARD_COUNTS = (1, 3)


@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_campaigns_identical_across_backends_and_shards(seed):
    """backend x shard-count: every combination == the direct batched run."""
    batch, n_periods = 4, 512
    reference = batched_sigma2_n_campaign(
        Sigma2NCampaignSpec(
            batch_size=batch, n_periods=n_periods, seed=seed
        ).ensemble(),
        n_periods,
    )
    for backend in BACKENDS:
        spec = Sigma2NCampaignSpec(
            batch_size=batch, n_periods=n_periods, seed=seed, backend=backend
        )
        for n_shards in SHARD_COUNTS:
            result = run_campaign(spec, executor=SerialExecutor(), n_shards=n_shards)
            np.testing.assert_array_equal(
                result.sigma2_s2,
                reference.sigma2_s2,
                err_msg=f"seed={seed} backend={backend} shards={n_shards}",
            )
            np.testing.assert_array_equal(result.n_values, reference.n_values)
            for column, expected in reference.table().items():
                np.testing.assert_array_equal(
                    result.table()[column],
                    expected,
                    err_msg=(
                        f"seed={seed} backend={backend} shards={n_shards} "
                        f"column={column}"
                    ),
                )


def _bit_requests(seed: int, count: int = 4):
    children = np.random.SeedSequence(seed).generate_state(count)
    return [BitsRequest(n_bits=48, divider=8, seed=int(child)) for child in children]


@pytest.mark.parametrize("seed", SEEDS)
def test_coalesced_equals_solo_across_backends(seed):
    """Coalesced batch rows == solo serves, on every backend.

    ``run_bits_batch`` is exactly the engine bridge the service's dispatch
    loop runs on its worker thread, so this covers the serving determinism
    contract for every seed without paying the event-loop overhead 50 times;
    the async end-to-end path is locked by the sampled test below.
    """
    requests = _bit_requests(seed)
    solo = [run_bits_batch([request])[0].bits for request in requests]
    for backend in BACKENDS:
        coalesced = run_bits_batch(requests, backend=backend)
        for row, request in enumerate(requests):
            np.testing.assert_array_equal(
                coalesced[row].bits,
                solo[row],
                err_msg=f"seed={seed} backend={backend} row={row}",
            )


@pytest.mark.parametrize("seed", SEEDS[:6])
@pytest.mark.parametrize("backend", BACKENDS)
def test_service_coalesced_equals_solo_end_to_end(seed, backend):
    """The full async pipeline: coalescing window vs serial max_batch=1."""
    requests = _bit_requests(seed)

    async def serve_all(max_batch: int, service_backend) -> list:
        config = ServiceConfig(
            max_batch=max_batch, max_wait_ms=50.0, backend=service_backend
        )
        async with TRNGService(config) as service:
            results = await asyncio.gather(
                *(service.get_bits(request) for request in requests)
            )
        return [result.bits for result in results]

    coalesced = asyncio.run(serve_all(len(requests), backend))
    solo = asyncio.run(serve_all(1, "numpy"))
    for row in range(len(requests)):
        np.testing.assert_array_equal(
            coalesced[row], solo[row], err_msg=f"seed={seed} row={row}"
        )
