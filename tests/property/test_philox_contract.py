"""The Philox index contract: draws are pure functions of their indices.

Under ``rng_contract="philox"`` every draw is keyed by
``(root_key, row, block, offset)`` — no spawn tree to walk, no generator
state to carry between shards.  These tests lock the consequences end to
end: any sub-range of rows recomputes the full run's draws bitwise (across
shard plans {1, 3, 7}), worker count never matters, chunked bit generation
stays chunk-invariant on the fixed synthesis-block grid, and coalesced
serving equals solo serving for philox-contract requests — including mixed
batches where spawn and philox requests share one scatter call.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.bits import BatchedEROTRNG
from repro.engine.campaign import batched_bit_campaign, batched_sigma2_n_campaign
from repro.engine.distributed import (
    BitCampaignSpec,
    SerialExecutor,
    Sigma2NCampaignSpec,
    run_campaign,
)
from repro.engine.rng import PhiloxRowStream, derive_row_streams
from repro.phase.psd import PhaseNoisePSD
from repro.serving import BitsRequest
from repro.serving.scatter import run_bits_batch
from repro.trng.ero_trng import EROTRNGConfiguration

#: Deterministically derived root seeds so failures replay exactly.
SEEDS = [int(word) for word in np.random.SeedSequence(20140407).generate_state(8)]

#: Shard plans from the acceptance criteria: 7 > batch forces clamping too.
SHARD_COUNTS = (1, 3, 7)


class TestSubRangeRecomputation:
    """Row draws come from indices alone: shards never need the full tree."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sharded_campaigns_match_batched_reference(self, seed):
        batch, n_periods = 4, 512
        spec = Sigma2NCampaignSpec(
            batch_size=batch,
            n_periods=n_periods,
            seed=seed,
            rng_contract="philox",
        )
        reference = batched_sigma2_n_campaign(spec.ensemble(), n_periods)
        for n_shards in SHARD_COUNTS:
            result = run_campaign(spec, executor=SerialExecutor(), n_shards=n_shards)
            np.testing.assert_array_equal(
                result.sigma2_s2,
                reference.sigma2_s2,
                err_msg=f"seed={seed} shards={n_shards}",
            )
            np.testing.assert_array_equal(result.n_values, reference.n_values)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sharded_bit_campaigns_match_batched_reference(self, seed):
        spec = BitCampaignSpec(
            batch_size=4,
            n_bits=256,
            dividers=(8, 32),
            seed=seed,
            rng_contract="philox",
        )
        reference = batched_bit_campaign(
            spec.configuration(),
            spec.dividers,
            spec.batch_size,
            spec.n_bits,
            seed=spec.seed,
            rng_contract="philox",
        )
        for n_shards in SHARD_COUNTS:
            result = run_campaign(spec, executor=SerialExecutor(), n_shards=n_shards)
            for attribute in ("bias", "shannon_entropy", "min_entropy"):
                np.testing.assert_array_equal(
                    getattr(result, attribute),
                    getattr(reference, attribute),
                    err_msg=f"seed={seed} shards={n_shards} {attribute}",
                )

    def test_single_row_recompute_from_indices_alone(self):
        """Row r of a B-row campaign == a campaign over rows [r, r+1)."""
        configuration = EROTRNGConfiguration(
            f0_hz=103e6,
            oscillator_psd=PhaseNoisePSD(b_thermal_hz=276.04, b_flicker_hz2=0.0),
            divider=16,
            frequency_mismatch=1e-3,
        )
        full = batched_bit_campaign(
            configuration, (16,), 5, 256, seed=11, rng_contract="philox"
        )
        for row in range(5):
            solo = batched_bit_campaign(
                configuration,
                (16,),
                5,
                256,
                seed=11,
                instance_range=(row, row + 1),
                rng_contract="philox",
            )
            np.testing.assert_array_equal(full.bias[:, row], solo.bias[:, 0])


class TestWorkerCountIndependence:
    """The philox backend agrees with itself at every worker count."""

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_backend_worker_counts_bitwise_equal(self, seed):
        results = []
        for backend in ("philox:1", "philox:2", "philox:4"):
            spec = Sigma2NCampaignSpec(
                batch_size=4, n_periods=512, seed=seed, backend=backend
            )
            assert spec.rng_contract == "philox"
            results.append(batched_sigma2_n_campaign(spec.ensemble(), 512))
        for other in results[1:]:
            np.testing.assert_array_equal(results[0].sigma2_s2, other.sigma2_s2)


class TestChunkedBitGeneration:
    """Chunking never moves the draw grid: blocks are indexed, not counted.

    ``BatchedEROTRNG`` synthesizes on a fixed grid of
    ``synthesis_block_periods`` periods, so a philox stream issues the same
    indexed draw sequence no matter how ``generate_raw`` calls are sliced.
    """

    CONFIGURATION = EROTRNGConfiguration(
        f0_hz=103e6,
        oscillator_psd=PhaseNoisePSD(b_thermal_hz=276.04, b_flicker_hz2=5.42),
        divider=33,
        frequency_mismatch=1e-3,
    )

    def _trng(self):
        return BatchedEROTRNG(
            self.CONFIGURATION, batch_size=4, seed=9, rng_contract="philox"
        )

    def test_chunked_equals_monolithic_bitwise(self):
        whole = self._trng().generate_raw(300)
        chunked = self._trng()
        parts = [chunked.generate_raw(k) for k in (1, 7, 100, 192)]
        np.testing.assert_array_equal(
            whole.bits, np.concatenate([part.bits for part in parts], axis=1)
        )
        np.testing.assert_array_equal(
            whole.sample_times_s,
            np.concatenate([part.sample_times_s for part in parts], axis=1),
        )

    def test_philox_streams_differ_from_spawn_streams(self):
        """The two contracts are distinct sequences, not a relabelling."""
        philox = self._trng().generate_raw(256)
        spawn = BatchedEROTRNG(
            self.CONFIGURATION, batch_size=4, seed=9, rng_contract="spawn"
        ).generate_raw(256)
        assert not np.array_equal(philox.bits, spawn.bits)


class TestBlockPurity:
    """A single block recomputes from ``(root_key, row, block)`` alone."""

    def test_arbitrary_block_recompute(self):
        stream = derive_row_streams(77, 8, rng_contract="philox")[5]
        draws = [stream.standard_normal(32) for _ in range(4)]
        for block, expected in enumerate(draws):
            recomputed = PhiloxRowStream(77, (5,)).block_generator(block)
            np.testing.assert_array_equal(expected, recomputed.standard_normal(32))

    def test_offset_is_positional_within_a_block(self):
        stream = derive_row_streams(77, 2, rng_contract="philox")[1]
        wide = stream.standard_normal(64)
        narrow = PhiloxRowStream(77, (1,)).block_generator(0).standard_normal(16)
        np.testing.assert_array_equal(wide[:16], narrow)


class TestCoalescedServing:
    """Coalesced philox-contract requests == solo serves, row by row."""

    def _requests(self, seed):
        children = np.random.SeedSequence(seed).generate_state(4)
        return [
            BitsRequest(
                n_bits=48, divider=8, seed=int(child), rng_contract="philox"
            )
            for child in children
        ]

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_coalesced_equals_solo(self, seed):
        requests = self._requests(seed)
        solo = [run_bits_batch([request])[0].bits for request in requests]
        coalesced = run_bits_batch(requests)
        for row in range(len(requests)):
            np.testing.assert_array_equal(
                coalesced[row].bits, solo[row], err_msg=f"seed={seed} row={row}"
            )

    def test_mixed_contract_batch_keeps_rows_independent(self):
        """spawn and philox requests coalesced together each keep their draws."""
        seeds = [int(w) for w in np.random.SeedSequence(5).generate_state(2)]
        mixed = [
            BitsRequest(n_bits=48, divider=8, seed=seeds[0], rng_contract="philox"),
            BitsRequest(n_bits=48, divider=8, seed=seeds[1], rng_contract="spawn"),
        ]
        solo = [run_bits_batch([request])[0].bits for request in mixed]
        coalesced = run_bits_batch(mixed)
        for row in range(len(mixed)):
            np.testing.assert_array_equal(coalesced[row].bits, solo[row])

    def test_contract_separates_group_keys(self):
        """Same seed, different contract: different streams, different bits."""
        philox = BitsRequest(n_bits=64, divider=8, seed=3, rng_contract="philox")
        spawn = BitsRequest(n_bits=64, divider=8, seed=3, rng_contract="spawn")
        assert philox.group_key() != spawn.group_key()
        assert not np.array_equal(
            philox.generator().standard_normal(64),
            spawn.generator().standard_normal(64),
        )
