"""Property-based tests (hypothesis) of the sigma^2_N machinery."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ratio import independence_threshold, ratio_constant, thermal_ratio
from repro.core.sigma_n import accumulation_weights, s_n_realizations
from repro.core.theory import (
    crossover_accumulation_length,
    sigma2_n_closed_form,
    sigma2_n_flicker,
    sigma2_n_thermal,
)
from repro.phase.psd import PhaseNoisePSD

coefficients = st.floats(min_value=1e-3, max_value=1e9, allow_nan=False)
frequencies = st.floats(min_value=1e6, max_value=1e10, allow_nan=False)
accumulations = st.integers(min_value=1, max_value=10**6)


class TestClosedFormProperties:
    @given(b_th=coefficients, b_fl=coefficients, f0=frequencies, n=accumulations)
    @settings(max_examples=200, deadline=None)
    def test_sigma2_n_is_positive_and_additive(self, b_th, b_fl, f0, n):
        psd = PhaseNoisePSD(b_th, b_fl)
        total = float(sigma2_n_closed_form(psd, f0, n))
        thermal = float(sigma2_n_thermal(b_th, f0, n))
        flicker = float(sigma2_n_flicker(b_fl, f0, n))
        assert total > 0.0
        assert total == pytest.approx(thermal + flicker, rel=1e-12)

    @given(b_th=coefficients, b_fl=coefficients, f0=frequencies, n=accumulations)
    @settings(max_examples=200, deadline=None)
    def test_sigma2_n_is_monotone_in_n(self, b_th, b_fl, f0, n):
        psd = PhaseNoisePSD(b_th, b_fl)
        assert float(sigma2_n_closed_form(psd, f0, n + 1)) > float(
            sigma2_n_closed_form(psd, f0, n)
        )

    @given(b_th=coefficients, b_fl=coefficients, f0=frequencies, n=accumulations)
    @settings(max_examples=200, deadline=None)
    def test_thermal_term_scales_linearly_and_flicker_quadratically(
        self, b_th, b_fl, f0, n
    ):
        assert float(sigma2_n_thermal(b_th, f0, 2 * n)) == pytest.approx(
            2.0 * float(sigma2_n_thermal(b_th, f0, n)), rel=1e-9
        )
        assert float(sigma2_n_flicker(b_fl, f0, 2 * n)) == pytest.approx(
            4.0 * float(sigma2_n_flicker(b_fl, f0, n)), rel=1e-9
        )


class TestRatioProperties:
    @given(b_th=coefficients, b_fl=coefficients, f0=frequencies, n=accumulations)
    @settings(max_examples=200, deadline=None)
    def test_ratio_is_a_probability_and_matches_k_form(self, b_th, b_fl, f0, n):
        psd = PhaseNoisePSD(b_th, b_fl)
        ratio = float(thermal_ratio(psd, f0, n))
        assert 0.0 < ratio <= 1.0
        constant = ratio_constant(psd, f0)
        assert ratio == pytest.approx(constant / (constant + n), rel=1e-9)

    @given(b_th=coefficients, b_fl=coefficients, f0=frequencies)
    @settings(max_examples=200, deadline=None)
    def test_crossover_equals_ratio_constant(self, b_th, b_fl, f0):
        psd = PhaseNoisePSD(b_th, b_fl)
        assert crossover_accumulation_length(psd, f0) == pytest.approx(
            ratio_constant(psd, f0), rel=1e-9
        )

    @given(
        b_th=coefficients,
        b_fl=coefficients,
        f0=frequencies,
        requirement=st.floats(min_value=0.5, max_value=0.999),
    )
    @settings(max_examples=200, deadline=None)
    def test_threshold_respects_requirement(self, b_th, b_fl, f0, requirement):
        psd = PhaseNoisePSD(b_th, b_fl)
        threshold = independence_threshold(psd, f0, requirement)
        assert float(thermal_ratio(psd, f0, threshold * 0.99)) >= requirement
        assert float(thermal_ratio(psd, f0, threshold * 1.01)) <= requirement


class TestSNStatisticProperties:
    @given(n=st.integers(min_value=1, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_weights_are_balanced(self, n):
        weights = accumulation_weights(n)
        assert weights.size == 2 * n
        assert weights.sum() == 0.0
        assert np.all(np.abs(weights) == 1.0)

    @given(
        data=st.lists(
            st.floats(min_value=-1e-9, max_value=1e-9, allow_nan=False),
            min_size=16,
            max_size=200,
        ),
        n=st.integers(min_value=1, max_value=8),
        offset=st.floats(min_value=-1e-6, max_value=1e-6, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_offset_invariance(self, data, n, offset):
        """s_N is invariant under a constant shift of the jitter record."""
        jitter = np.asarray(data)
        if jitter.size < 2 * n:
            return
        base = s_n_realizations(jitter, n)
        shifted = s_n_realizations(jitter + offset, n)
        np.testing.assert_allclose(base, shifted, atol=1e-12)

    @given(
        data=st.lists(
            st.floats(min_value=-1e-9, max_value=1e-9, allow_nan=False),
            min_size=16,
            max_size=200,
        ),
        n=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_sign_flip_symmetry(self, data, n):
        """Negating the jitter negates every s_N realization."""
        jitter = np.asarray(data)
        if jitter.size < 2 * n:
            return
        np.testing.assert_allclose(
            s_n_realizations(-jitter, n), -s_n_realizations(jitter, n), atol=1e-15
        )
