"""Property-based tests of the entropy estimators and stochastic models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trng.entropy import (
    binary_entropy,
    entropy_from_bias,
    markov_entropy_rate,
    min_entropy_per_bit,
    shannon_entropy_per_bit,
)
from repro.trng.models.baudet import (
    bit_bias_upper_bound,
    entropy_lower_bound,
    required_quality_factor,
)
from repro.trng.models.refined import RefinedEntropyModel
from repro.phase.psd import PhaseNoisePSD

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
qualities = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
bit_lists = st.lists(st.integers(min_value=0, max_value=1), min_size=64, max_size=2048)


class TestBinaryEntropyProperties:
    @given(p=probabilities)
    @settings(max_examples=300, deadline=None)
    def test_bounded_and_symmetric(self, p):
        value = binary_entropy(p)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(binary_entropy(1.0 - p), abs=1e-12)

    @given(p=st.floats(min_value=0.01, max_value=0.49))
    @settings(max_examples=200, deadline=None)
    def test_monotone_toward_half(self, p):
        assert binary_entropy(p) < binary_entropy(p + 0.01)

    @given(bias=st.floats(min_value=-0.5, max_value=0.5, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_entropy_from_bias_consistency(self, bias):
        assert entropy_from_bias(bias) == pytest.approx(binary_entropy(0.5 + bias))


class TestEmpiricalEstimatorProperties:
    @given(bits=bit_lists)
    @settings(max_examples=100, deadline=None)
    def test_min_entropy_never_exceeds_shannon(self, bits):
        array = np.asarray(bits)
        if np.all(array == array[0]):
            return
        assert (
            min_entropy_per_bit(array) <= shannon_entropy_per_bit(array) + 1e-12
        )

    @given(bits=bit_lists)
    @settings(max_examples=100, deadline=None)
    def test_estimates_are_in_unit_interval(self, bits):
        array = np.asarray(bits)
        assert 0.0 <= shannon_entropy_per_bit(array) <= 1.0
        assert 0.0 <= min_entropy_per_bit(array) <= 1.0 + 1e-12
        assert 0.0 <= markov_entropy_rate(array) <= 1.0 + 1e-12

    @given(bits=bit_lists)
    @settings(max_examples=100, deadline=None)
    def test_markov_rate_never_exceeds_marginal_entropy(self, bits):
        """Conditioning can only reduce entropy.

        The inequality is exact for the true distribution; the plug-in
        estimators can violate it slightly on short samples, so a small
        finite-sample slack (a few times 1/n) is allowed.
        """
        array = np.asarray(bits)
        slack = 5.0 / array.size
        assert markov_entropy_rate(array) <= shannon_entropy_per_bit(array) + slack


class TestModelProperties:
    @given(q=qualities)
    @settings(max_examples=300, deadline=None)
    def test_bounds_live_in_unit_interval(self, q):
        assert 0.0 <= entropy_lower_bound(q) <= 1.0
        assert 0.0 <= bit_bias_upper_bound(q) <= 0.5

    @given(q=st.floats(min_value=0.0, max_value=5.0), delta=st.floats(min_value=1e-3, max_value=1.0))
    @settings(max_examples=200, deadline=None)
    def test_entropy_bound_is_monotone(self, q, delta):
        assert entropy_lower_bound(q + delta) >= entropy_lower_bound(q)

    @given(target=st.floats(min_value=0.5, max_value=0.9999))
    @settings(max_examples=200, deadline=None)
    def test_required_quality_round_trip(self, target):
        q = required_quality_factor(target)
        if q <= 0.0:
            assert entropy_lower_bound(0.0) >= target or q <= 0.0
        else:
            assert entropy_lower_bound(q) == pytest.approx(target, abs=1e-6)

    @given(
        b_th=st.floats(min_value=1.0, max_value=1e5),
        b_fl=st.floats(min_value=1.0, max_value=1e8),
        n=st.integers(min_value=1, max_value=10**6),
        calibration=st.integers(min_value=1, max_value=10**6),
    )
    @settings(max_examples=200, deadline=None)
    def test_naive_model_never_claims_less_than_refined(
        self, b_th, b_fl, n, calibration
    ):
        """The central security statement of the paper, as an invariant: under
        any parameters, the independence-assuming evaluation promises at least
        as much entropy as the flicker-aware one."""
        model = RefinedEntropyModel(103e6, PhaseNoisePSD(b_th, b_fl))
        comparison = model.compare(n, calibration_length=calibration)
        assert comparison.naive_entropy >= comparison.refined_entropy - 1e-9
        assert 0.0 <= comparison.refined_entropy <= 1.0
        assert 0.0 <= comparison.naive_entropy <= 1.0
