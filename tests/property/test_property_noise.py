"""Property-based tests of the noise and phase-noise layers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noise.flicker import flicker_current_psd
from repro.noise.thermal import thermal_current_psd
from repro.phase.isf import ImpulseSensitivityFunction, phase_psd_from_current_noise
from repro.phase.psd import PhaseNoisePSD

positive_small = st.floats(min_value=1e-9, max_value=1e3, allow_nan=False)
frequencies = st.floats(min_value=1e-3, max_value=1e12, allow_nan=False)


class TestNoisePSDProperties:
    @given(
        gm=st.floats(min_value=1e-6, max_value=1.0),
        temperature=st.floats(min_value=1.0, max_value=500.0),
        gamma=st.floats(min_value=0.1, max_value=3.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_thermal_psd_positive_and_linear_in_gm(self, gm, temperature, gamma):
        value = thermal_current_psd(gm, temperature, gamma)
        assert value > 0.0
        assert thermal_current_psd(2.0 * gm, temperature, gamma) == pytest.approx(
            2.0 * value, rel=1e-9
        )

    @given(
        frequency=st.floats(min_value=1e-3, max_value=1e9),
        current=st.floats(min_value=1e-9, max_value=1e-1),
        width=st.floats(min_value=1e-8, max_value=1e-5),
        length=st.floats(min_value=1e-8, max_value=1e-6),
        alpha=st.floats(min_value=1e-8, max_value=1e-3),
    )
    @settings(max_examples=200, deadline=None)
    def test_flicker_psd_scalings(self, frequency, current, width, length, alpha):
        value = flicker_current_psd(frequency, current, width, length, alpha)
        assert value >= 0.0
        # 1/f law
        assert flicker_current_psd(
            2.0 * frequency, current, width, length, alpha
        ) == pytest.approx(value / 2.0, rel=1e-9)
        # inverse-square channel-length law (the paper's scaling argument)
        assert flicker_current_psd(
            frequency, current, width, length / 2.0, alpha
        ) == pytest.approx(4.0 * value, rel=1e-9)


class TestPhasePSDProperties:
    @given(b_th=positive_small, b_fl=positive_small, f=frequencies)
    @settings(max_examples=300, deadline=None)
    def test_psd_is_positive_and_decreasing(self, b_th, b_fl, f):
        psd = PhaseNoisePSD(b_th, b_fl)
        assert psd(f) > 0.0
        assert psd(2.0 * f) < psd(f)

    @given(b_th=positive_small, b_fl=positive_small, f=frequencies)
    @settings(max_examples=300, deadline=None)
    def test_parts_add_up(self, b_th, b_fl, f):
        psd = PhaseNoisePSD(b_th, b_fl)
        assert psd(f) == pytest.approx(
            psd.thermal_part(f) + psd.flicker_part(f), rel=1e-12
        )

    @given(
        b_th=positive_small,
        b_fl=positive_small,
        f0=st.floats(min_value=1e6, max_value=1e10),
    )
    @settings(max_examples=300, deadline=None)
    def test_jitter_parameter_round_trip(self, b_th, b_fl, f0):
        psd = PhaseNoisePSD(b_th, b_fl)
        rebuilt = PhaseNoisePSD.from_jitter_parameters(
            f0,
            np.sqrt(psd.thermal_period_jitter_variance(f0)),
            psd.flicker_fractional_frequency_coefficient(f0),
        )
        assert rebuilt.b_thermal_hz == pytest.approx(b_th, rel=1e-9)
        assert rebuilt.b_flicker_hz2 == pytest.approx(b_fl, rel=1e-9)


class TestISFProperties:
    @given(
        thermal=st.floats(min_value=0.0, max_value=1e-18),
        flicker=st.floats(min_value=0.0, max_value=1e-14),
        q_max=st.floats(min_value=1e-16, max_value=1e-12),
        n_stages=st.integers(min_value=1, max_value=15),
        asymmetry=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_conversion_is_nonnegative_and_monotone_in_noise(
        self, thermal, flicker, q_max, n_stages, asymmetry
    ):
        isf = ImpulseSensitivityFunction.ring_oscillator_default(asymmetry=asymmetry)
        psd = phase_psd_from_current_noise(thermal, flicker, q_max, isf, n_stages)
        assert psd.b_thermal_hz >= 0.0
        assert psd.b_flicker_hz2 >= 0.0
        louder = phase_psd_from_current_noise(
            2.0 * thermal, 2.0 * flicker, q_max, isf, n_stages
        )
        assert louder.b_thermal_hz >= psd.b_thermal_hz
        assert louder.b_flicker_hz2 >= psd.b_flicker_hz2
