"""Shared fixtures for the test-suite.

Heavy synthetic records (long jitter records, bit streams) are session-scoped
so the statistical tests can share them instead of regenerating them; every
fixture uses a fixed seed so the whole suite is deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import accumulated_variance_curve
from repro.measurement import VirtualEvaristePlatform
from repro.paper import PAPER_F0_HZ, paper_phase_noise_psd
from repro.phase import PeriodJitterSynthesizer, PhaseNoisePSD


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh, seeded random generator for each test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def paper_psd() -> PhaseNoisePSD:
    """The relative phase-noise PSD calibrated to the paper's fit."""
    return paper_phase_noise_psd()


@pytest.fixture(scope="session")
def paper_f0() -> float:
    """The paper's oscillator frequency (103 MHz)."""
    return PAPER_F0_HZ


@pytest.fixture(scope="session")
def paper_jitter_record(paper_psd: PhaseNoisePSD, paper_f0: float) -> np.ndarray:
    """A long jitter record synthesized with the paper-calibrated PSD."""
    synthesizer = PeriodJitterSynthesizer(
        paper_f0, paper_psd, rng=np.random.default_rng(2014)
    )
    return synthesizer.jitter(200_000)


@pytest.fixture(scope="session")
def thermal_only_jitter_record(paper_f0: float) -> np.ndarray:
    """A jitter record with thermal noise only (independent realizations)."""
    psd = PhaseNoisePSD(b_thermal_hz=276.04, b_flicker_hz2=0.0)
    synthesizer = PeriodJitterSynthesizer(
        paper_f0, psd, rng=np.random.default_rng(1966)
    )
    return synthesizer.jitter(120_000)


@pytest.fixture(scope="session")
def paper_curve(paper_jitter_record: np.ndarray, paper_f0: float):
    """Accumulated-variance curve estimated from the shared jitter record."""
    return accumulated_variance_curve(paper_jitter_record, paper_f0)


@pytest.fixture(scope="session")
def platform() -> VirtualEvaristePlatform:
    """A paper-calibrated virtual platform with a fixed seed."""
    return VirtualEvaristePlatform(rng=np.random.default_rng(7))


@pytest.fixture(scope="session")
def unbiased_bits() -> np.ndarray:
    """A large stream of ideal unbiased, independent bits."""
    return np.random.default_rng(99).integers(0, 2, size=400_000).astype(np.int8)


@pytest.fixture(scope="session")
def biased_bits() -> np.ndarray:
    """A large stream of independent but strongly biased bits (P(1) = 0.7)."""
    return (np.random.default_rng(98).random(200_000) < 0.7).astype(np.int8)
