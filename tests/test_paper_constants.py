"""Tests for the paper reference values and the physical-constant helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import (
    BOLTZMANN_K,
    celsius_to_kelvin,
    db_to_ratio,
    kelvin_to_celsius,
    permille,
    ps_to_seconds,
    ratio_to_db,
    seconds_to_ps,
)
from repro.core.ratio import independence_threshold, ratio_constant
from repro.paper import (
    PAPER_B_FLICKER_HZ2,
    PAPER_B_THERMAL_HZ,
    PAPER_F0_HZ,
    PAPER_INDEPENDENCE_THRESHOLD_N,
    PAPER_NORMALIZED_THERMAL_SLOPE,
    PAPER_RATIO_CONSTANT_K,
    PAPER_REFERENCE,
    PAPER_THERMAL_JITTER_S,
    paper_phase_noise_psd,
    paper_single_oscillator_psd,
)


class TestPaperReferenceConsistency:
    def test_b_thermal_follows_from_slope(self):
        """b_th = slope/2 * f0 (Sec. IV-B): 5.36e-6 / 2 * 103 MHz = 276.04 Hz."""
        assert PAPER_NORMALIZED_THERMAL_SLOPE / 2.0 * PAPER_F0_HZ == pytest.approx(
            PAPER_B_THERMAL_HZ, rel=2e-3
        )

    def test_thermal_jitter_follows_from_b_thermal(self):
        assert np.sqrt(PAPER_B_THERMAL_HZ / PAPER_F0_HZ**3) == pytest.approx(
            PAPER_THERMAL_JITTER_S, rel=1e-3
        )

    def test_jitter_ratio_is_1_6_permille(self):
        assert permille(PAPER_THERMAL_JITTER_S * PAPER_F0_HZ) == pytest.approx(
            1.6, rel=0.03
        )

    def test_flicker_coefficient_reproduces_k(self):
        psd = paper_phase_noise_psd()
        assert ratio_constant(psd, PAPER_F0_HZ) == pytest.approx(
            PAPER_RATIO_CONSTANT_K, rel=1e-9
        )

    def test_threshold_reproduces_281(self):
        psd = paper_phase_noise_psd()
        threshold = independence_threshold(psd, PAPER_F0_HZ, 0.95)
        assert int(threshold) == PAPER_INDEPENDENCE_THRESHOLD_N

    def test_single_oscillator_psd_is_half_of_relative(self):
        relative = paper_phase_noise_psd()
        single = paper_single_oscillator_psd()
        assert single.b_thermal_hz == pytest.approx(relative.b_thermal_hz / 2.0)
        assert single.b_flicker_hz2 == pytest.approx(relative.b_flicker_hz2 / 2.0)

    def test_reference_dataclass_matches_module_constants(self):
        assert PAPER_REFERENCE.b_thermal_hz == PAPER_B_THERMAL_HZ
        assert PAPER_REFERENCE.b_flicker_hz2 == PAPER_B_FLICKER_HZ2
        assert PAPER_REFERENCE.f0_hz == PAPER_F0_HZ


class TestConstants:
    def test_boltzmann(self):
        assert BOLTZMANN_K == pytest.approx(1.380649e-23)

    def test_temperature_round_trip(self):
        assert kelvin_to_celsius(celsius_to_kelvin(27.0)) == pytest.approx(27.0)

    def test_db_round_trip(self):
        assert ratio_to_db(db_to_ratio(-3.0)) == pytest.approx(-3.0)
        with pytest.raises(ValueError):
            ratio_to_db(0.0)

    def test_time_unit_round_trip(self):
        assert ps_to_seconds(seconds_to_ps(15.89e-12)) == pytest.approx(15.89e-12)

    def test_permille(self):
        assert permille(0.0016) == pytest.approx(1.6)
