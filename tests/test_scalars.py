"""Return-shape discipline: scalar-in (including 0-d arrays) means scalar-out.

Regression for the ``np.isscalar`` hole: 0-d ndarray inputs used to leak 0-d
ndarrays out of every array-or-scalar API because ``np.isscalar`` is False
for them.  All those sites now share :func:`repro.scalars.scalar_like`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ratio import thermal_ratio
from repro.core.theory import (
    sigma2_n_closed_form,
    sigma2_n_flicker,
    sigma2_n_thermal,
)
from repro.noise.flicker import FlickerNoiseSource, flicker_current_psd
from repro.noise.sources import CompositeNoiseSource
from repro.noise.thermal import ThermalNoiseSource
from repro.phase.psd import PhaseNoisePSD
from repro.scalars import is_scalar_input, scalar_like
from repro.trng.models.amaki import AmakiMarkovModel

PSD = PhaseNoisePSD(b_thermal_hz=5.5e-9, b_flicker_hz2=5.42)


class TestHelper:
    @pytest.mark.parametrize(
        "value", [3.0, 3, np.float64(3.0), np.asarray(3.0), np.array(7)]
    )
    def test_scalar_inputs_detected(self, value):
        assert is_scalar_input(value)

    @pytest.mark.parametrize("value", [np.array([3.0]), [3.0], np.zeros((2, 2))])
    def test_array_inputs_detected(self, value):
        assert not is_scalar_input(value)

    def test_scalar_like_casts(self):
        out = scalar_like(np.asarray(2.5), np.asarray(1.0))
        assert type(out) is float and out == 2.5
        out = scalar_like(np.asarray(True), 1, cast=int)
        assert type(out) is int and out == 1

    def test_scalar_like_array_passthrough(self):
        out = scalar_like(np.array([1.0, 2.0]), np.array([3.0, 4.0]))
        assert isinstance(out, np.ndarray) and out.shape == (2,)


FREQUENCY_SITES = [
    pytest.param(lambda f: flicker_current_psd(f, 1e-4, 1e-6, 100e-9, 1e-5),
                 id="flicker_current_psd"),
    pytest.param(lambda f: FlickerNoiseSource(1e-24).psd(f),
                 id="FlickerNoiseSource.psd"),
    pytest.param(
        lambda f: CompositeNoiseSource(
            [ThermalNoiseSource(1e-22), FlickerNoiseSource(1e-24)]
        ).psd(f),
        id="CompositeNoiseSource.psd",
    ),
    pytest.param(lambda f: PSD(f), id="PhaseNoisePSD.__call__"),
    pytest.param(lambda f: PSD.thermal_part(f), id="PhaseNoisePSD.thermal_part"),
    pytest.param(lambda f: PSD.flicker_part(f), id="PhaseNoisePSD.flicker_part"),
    pytest.param(lambda f: PSD.phase_noise_dbc_per_hz(f),
                 id="PhaseNoisePSD.phase_noise_dbc_per_hz"),
    pytest.param(lambda n: thermal_ratio(PSD, 500e6, n), id="thermal_ratio"),
    pytest.param(lambda n: sigma2_n_thermal(5.5e-9, 500e6, n),
                 id="sigma2_n_thermal"),
    pytest.param(lambda n: sigma2_n_flicker(5.42, 500e6, n),
                 id="sigma2_n_flicker"),
    pytest.param(lambda n: sigma2_n_closed_form(PSD, 500e6, n),
                 id="sigma2_n_closed_form"),
]


class TestCallSites:
    @pytest.mark.parametrize("site", FREQUENCY_SITES)
    def test_plain_scalar_returns_float(self, site):
        assert type(site(2.0)) is float

    @pytest.mark.parametrize("site", FREQUENCY_SITES)
    def test_zero_d_array_returns_float(self, site):
        """The historical bug: 0-d ndarray inputs leaked 0-d ndarrays."""
        result = site(np.asarray(2.0))
        assert type(result) is float

    @pytest.mark.parametrize("site", FREQUENCY_SITES)
    def test_one_d_array_returns_array(self, site):
        result = site(np.array([2.0, 4.0]))
        assert isinstance(result, np.ndarray) and result.shape == (2,)

    @pytest.mark.parametrize("site", FREQUENCY_SITES)
    def test_zero_d_value_matches_scalar_value(self, site):
        assert site(np.asarray(2.0)) == site(2.0)

    def test_amaki_bit_for_bin(self):
        model = AmakiMarkovModel(
            phase_step_fraction=0.1, jitter_std_fraction=0.05, n_bins=8
        )
        assert type(model.bit_for_bin(1)) is int
        zero_d = model.bit_for_bin(np.asarray(1))
        assert type(zero_d) is int and zero_d == model.bit_for_bin(1)
        array = model.bit_for_bin(np.array([0, 4]))
        assert array.dtype == np.int8 and array.shape == (2,)
