"""``python -m repro.serve`` CLI: argument handling, stdio serving, self-test."""

from __future__ import annotations

import io
import json

import numpy as np

from repro import serve
from repro.serving.protocol import string_to_bits
from repro.serving.scatter import run_bits_batch
from repro.serving.requests import BitsRequest


class TestArgumentValidation:
    def test_rejects_bad_max_batch(self, capsys):
        assert serve.main(["--max-batch", "0"]) == 2
        assert "--max-batch" in capsys.readouterr().err

    def test_rejects_negative_wait(self, capsys):
        assert serve.main(["--max-wait-ms", "-1"]) == 2
        assert "--max-wait-ms" in capsys.readouterr().err


class TestStdioServing:
    def _run(self, monkeypatch, lines, argv):
        stdin = io.StringIO("\n".join(json.dumps(line) for line in lines) + "\n")
        stdout = io.StringIO()
        monkeypatch.setattr("sys.stdin", stdin)
        monkeypatch.setattr("sys.stdout", stdout)
        exit_code = serve.main(["--stdio", *argv])
        return exit_code, [
            json.loads(response)
            for response in stdout.getvalue().splitlines()
            if response
        ]

    def test_serves_bits_and_stats_until_eof(self, monkeypatch):
        request = BitsRequest(n_bits=12, divider=8, seed=31)
        exit_code, responses = self._run(
            monkeypatch,
            [
                {
                    "id": 1,
                    "kind": "bits",
                    "n_bits": request.n_bits,
                    "divider": request.divider,
                    "seed": request.seed,
                },
                {"id": 2, "kind": "ping"},
            ],
            ["--max-wait-ms", "1"],
        )
        assert exit_code == 0
        by_id = {response["id"]: response for response in responses}
        assert by_id[2]["result"]["pong"] is True
        served = string_to_bits(by_id[1]["result"]["bits"])
        assert np.array_equal(served, run_bits_batch([request])[0].bits)

    def test_server_seed_makes_unseeded_requests_reproducible(
        self, monkeypatch
    ):
        lines = [{"id": 1, "kind": "bits", "n_bits": 8, "divider": 8}]
        _, first = self._run(monkeypatch, lines, ["--seed", "9"])
        _, again = self._run(monkeypatch, lines, ["--seed", "9"])
        assert first[0]["result"]["seed"] == again[0]["result"]["seed"]
        assert first[0]["result"]["bits"] == again[0]["result"]["bits"]

    def test_stats_flag_reports_to_stderr(self, monkeypatch, capsys):
        exit_code, _ = self._run(
            monkeypatch,
            [{"id": 1, "kind": "bits", "n_bits": 4, "divider": 8, "seed": 1}],
            ["--stats"],
        )
        assert exit_code == 0
        assert "final stats" in capsys.readouterr().err


class TestSelfTestCommand:
    def test_self_test_exits_zero(self, capsys):
        assert serve.main(["--self-test"]) == 0
        output = capsys.readouterr().out
        assert "coalescing happened" in output
        assert "solo-served bits" in output
