"""Backpressure, load shedding and coalescing-window behaviour."""

from __future__ import annotations

import asyncio

import pytest

from repro.serving import (
    BitsRequest,
    Coalescer,
    RequestQueue,
    ServiceConfig,
    ServiceOverloaded,
    ServiceStopped,
    TRNGService,
)


def run(coroutine):
    return asyncio.run(coroutine)


def _request(seed: int, divider: int = 8) -> BitsRequest:
    return BitsRequest(n_bits=4, divider=divider, seed=seed)


class TestRequestQueue:
    def test_rejects_when_full_under_load_shedding(self):
        async def scenario():
            queue = RequestQueue(max_pending=2, overflow="reject")
            await queue.submit(_request(1))
            await queue.submit(_request(2))
            with pytest.raises(ServiceOverloaded):
                await queue.submit(_request(3))
            assert len(queue) == 2

        run(scenario())

    def test_wait_policy_applies_backpressure(self):
        async def scenario():
            queue = RequestQueue(max_pending=1, overflow="wait")
            await queue.submit(_request(1))
            blocked = asyncio.create_task(queue.submit(_request(2)))
            await asyncio.sleep(0.01)
            assert not blocked.done()  # suspended on the full queue
            pending = await queue.get()
            assert pending.request.seed == 1
            await asyncio.wait_for(blocked, timeout=1.0)  # slot freed

        run(scenario())

    def test_submitter_blocked_on_full_queue_fails_at_drain(self):
        async def scenario():
            # Regression: a "wait"-policy submitter suspended on a full
            # queue when the service stops must get ServiceStopped, not an
            # eternally pending future in a dispatcherless queue.
            queue = RequestQueue(max_pending=1, overflow="wait")
            await queue.submit(_request(1))
            blocked = asyncio.create_task(queue.submit(_request(2)))
            await asyncio.sleep(0.01)
            assert not blocked.done()
            queue.drain(ServiceStopped("stop"))
            await queue.get()  # frees the slot, waking the blocked putter
            future = await asyncio.wait_for(blocked, timeout=1.0)
            with pytest.raises(ServiceStopped):
                await future
            # ...and the closed queue sheds new submissions immediately.
            with pytest.raises(ServiceStopped):
                await queue.submit(_request(3))
            queue.reopen()
            await queue.submit(_request(4))

        run(scenario())

    def test_drain_fails_all_queued_futures(self):
        async def scenario():
            queue = RequestQueue(max_pending=4)
            futures = [await queue.submit(_request(seed)) for seed in (1, 2)]
            assert queue.drain(ServiceStopped("stop")) == 2
            for future in futures:
                with pytest.raises(ServiceStopped):
                    await future

        run(scenario())

    def test_rejects_invalid_configuration(self):
        with pytest.raises(ValueError):
            RequestQueue(max_pending=0)
        with pytest.raises(ValueError):
            RequestQueue(overflow="drop-oldest")


class TestCoalescer:
    def test_groups_compatible_requests_up_to_max_batch(self):
        async def scenario():
            queue = RequestQueue()
            coalescer = Coalescer(max_batch=3, max_wait_ms=50.0)
            for seed in range(5):
                await queue.submit(_request(seed))
            batch = await coalescer.next_batch(queue)
            assert [p.request.seed for p in batch] == [0, 1, 2]
            batch = await coalescer.next_batch(queue)
            assert [p.request.seed for p in batch] == [3, 4]

        run(scenario())

    def test_incompatible_requests_are_deferred_in_order(self):
        async def scenario():
            queue = RequestQueue()
            coalescer = Coalescer(max_batch=8, max_wait_ms=30.0)
            await queue.submit(_request(1, divider=8))
            await queue.submit(_request(2, divider=16))
            await queue.submit(_request(3, divider=8))
            await queue.submit(_request(4, divider=16))
            first = await coalescer.next_batch(queue)
            assert [p.request.seed for p in first] == [1, 3]
            assert len(coalescer) == 2  # both divider-16 requests parked
            second = await coalescer.next_batch(queue)
            assert [p.request.seed for p in second] == [2, 4]
            assert len(coalescer) == 0

        run(scenario())

    def test_max_batch_one_skips_the_window(self):
        async def scenario():
            queue = RequestQueue()
            coalescer = Coalescer(max_batch=1, max_wait_ms=10_000.0)
            await queue.submit(_request(1))
            batch = await asyncio.wait_for(
                coalescer.next_batch(queue), timeout=1.0
            )
            assert len(batch) == 1

        run(scenario())

    def test_window_closes_without_companions(self):
        async def scenario():
            queue = RequestQueue()
            coalescer = Coalescer(max_batch=8, max_wait_ms=10.0)
            await queue.submit(_request(1))
            batch = await asyncio.wait_for(
                coalescer.next_batch(queue), timeout=1.0
            )
            assert len(batch) == 1

        run(scenario())

    def test_rejects_invalid_configuration(self):
        with pytest.raises(ValueError):
            Coalescer(max_batch=0)
        with pytest.raises(ValueError):
            Coalescer(max_wait_ms=-1.0)


class TestServiceLifecycle:
    def test_submit_requires_running_service(self):
        async def scenario():
            service = TRNGService()
            with pytest.raises(ServiceStopped):
                await service.submit(_request(1))

        run(scenario())

    def test_stop_fails_pending_requests(self):
        async def scenario():
            # A service that never dispatches (not started) but has queued
            # work when stopped must fail those futures, not hang them.
            service = TRNGService(ServiceConfig(max_batch=4))
            await service.start()
            await service.stop()
            assert not service.running

        run(scenario())

    def test_service_sheds_load_and_counts_rejections(self):
        async def scenario():
            service = TRNGService(ServiceConfig(max_pending=1, overflow="reject"))
            await service.start()
            # Submitting without suspending never yields to the event loop,
            # so the dispatcher cannot drain between these calls: the queue
            # is deterministically full when the second submit arrives.
            first = await service.submit(_request(1))
            with pytest.raises(ServiceOverloaded):
                await service.submit(_request(2))
            assert service.stats.rejected == 1
            assert service.stats.submitted == 1
            await service.stop()
            with pytest.raises(ServiceStopped):
                await first

        run(scenario())

    def test_stop_mid_window_fails_the_captured_leader(self):
        async def scenario():
            # Regression: stop() during an open coalescing window used to
            # lose the batch leader (popped from the queue, not yet
            # dispatched), hanging its caller forever.
            service = TRNGService(ServiceConfig(max_batch=8, max_wait_ms=10_000.0))
            await service.start()
            future = await service.submit(_request(1))
            await asyncio.sleep(0.05)  # dispatcher pops the leader, waits
            assert not future.done()
            await asyncio.wait_for(service.stop(), timeout=1.0)
            with pytest.raises(ServiceStopped):
                await asyncio.wait_for(future, timeout=1.0)

        run(scenario())

    def test_context_manager_starts_and_stops(self):
        async def scenario():
            async with TRNGService() as service:
                assert service.running
            assert not service.running

        run(scenario())
