"""Fast-tier sigma^2_N serving: cache semantics, labeling, accuracy gate.

The fast tier trades the per-seed exactness contract for latency, so these
tests pin (a) that exact-tier traffic is completely untouched, (b) that a
fast answer is the Eq. 11 theory curve at a gated fitted campaign's
coefficients, explicitly labeled, and (c) that the r^2 admission gate keeps
statistically inconsistent fits out of the cache.
"""

from __future__ import annotations

import asyncio
import dataclasses

import numpy as np
import pytest

from repro.core.theory import sigma2_n_flicker, sigma2_n_thermal
from repro.serving import (
    FastTierCache,
    ServiceConfig,
    Sigma2NRequest,
    TRNGService,
)
from repro.serving.protocol import build_request, parse_request_line, result_to_payload
from repro.serving.scatter import execute_batch, run_sigma2n_batch

N_PERIODS = 4096


def _request(seed: int, tier: str = "fast", **overrides) -> Sigma2NRequest:
    parameters = dict(n_periods=N_PERIODS, seed=seed, tier=tier)
    parameters.update(overrides)
    return Sigma2NRequest(**parameters)


class TestRequestTier:
    def test_default_is_exact(self):
        assert Sigma2NRequest(n_periods=64, seed=1).tier == "exact"

    def test_invalid_tier_rejected(self):
        with pytest.raises(ValueError, match="tier"):
            Sigma2NRequest(n_periods=64, seed=1, tier="warp")

    def test_tier_separates_coalescing_groups(self):
        exact = Sigma2NRequest(n_periods=64, seed=1)
        fast = Sigma2NRequest(n_periods=64, seed=2, tier="fast")
        assert exact.group_key() != fast.group_key()

    def test_same_tier_groups_coalesce(self):
        assert _request(1).group_key() == _request(2).group_key()


class TestCacheUnit:
    def test_store_gated_on_r_squared(self):
        cache = FastTierCache(min_r_squared=0.95)
        request = _request(1)
        (result,) = run_sigma2n_batch([request])
        poor = dataclasses.replace(result, r_squared=0.5)
        assert not cache.store(request, poor)
        assert cache.stats()["rejected"] == 1
        assert cache.lookup(request) is None

    def test_store_and_serve_hit(self):
        cache = FastTierCache(min_r_squared=0.0)
        request = _request(1)
        (result,) = run_sigma2n_batch([request])
        assert cache.store(request, result)
        follower = _request(2)
        entry = cache.lookup(follower)
        assert entry is not None
        served = cache.serve(follower, entry)
        assert served.tier == "fast"
        assert served.seed == follower.seed
        expected = np.asarray(
            sigma2_n_thermal(entry.b_thermal_hz, entry.f0_hz, entry.n_values)
        ) + np.asarray(
            sigma2_n_flicker(entry.b_flicker_hz2, entry.f0_hz, entry.n_values)
        )
        np.testing.assert_array_equal(served.sigma2_s2, expected)
        np.testing.assert_array_equal(served.n_values, result.n_values)

    def test_key_covers_every_curve_parameter(self):
        cache = FastTierCache(min_r_squared=0.0)
        request = _request(1)
        (result,) = run_sigma2n_batch([request])
        cache.store(request, result)
        assert cache.lookup(_request(9, b_thermal_hz=123.0)) is None
        assert cache.lookup(_request(9, n_periods=N_PERIODS * 2)) is None
        assert cache.lookup(_request(9, min_realizations=16)) is None
        assert cache.lookup(_request(9)) is not None

    def test_eviction_and_counters(self):
        cache = FastTierCache(min_r_squared=0.0, maxsize=1)
        first = _request(1)
        (result,) = run_sigma2n_batch([first])
        cache.store(first, result)
        other = _request(2, b_thermal_hz=50.0)
        (other_result,) = run_sigma2n_batch([other])
        cache.store(other, other_result)
        stats = cache.stats()
        assert stats["evictions"] == 1 and stats["size"] == 1
        assert cache.lookup(first) is None

    def test_zero_capacity_never_stores(self):
        cache = FastTierCache(min_r_squared=0.0, maxsize=0)
        request = _request(1)
        (result,) = run_sigma2n_batch([request])
        assert not cache.store(request, result)
        assert cache.stats()["size"] == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FastTierCache(min_r_squared=1.5)
        with pytest.raises(ValueError):
            FastTierCache(maxsize=-1)


class TestBatchRouting:
    def test_exact_tier_is_bitwise_untouched_by_the_cache(self):
        requests = [_request(seed, tier="exact") for seed in (1, 2)]
        cache = FastTierCache(min_r_squared=0.0)
        plain = run_sigma2n_batch(requests)
        routed = run_sigma2n_batch(requests, fast_cache=cache)
        for left, right in zip(plain, routed):
            np.testing.assert_array_equal(left.sigma2_s2, right.sigma2_s2)
            assert left.tier == right.tier == "exact"
        assert cache.stats()["hits"] == cache.stats()["misses"] == 0

    def test_cold_miss_computes_exactly_and_seeds_cache(self):
        cache = FastTierCache(min_r_squared=0.0)
        request = _request(1)
        (served,) = run_sigma2n_batch([request], fast_cache=cache)
        (reference,) = run_sigma2n_batch([_request(1, tier="exact")])
        assert served.tier == "exact"
        np.testing.assert_array_equal(served.sigma2_s2, reference.sigma2_s2)
        assert cache.stats()["size"] == 1

    def test_warm_hit_serves_theory_curve(self):
        cache = FastTierCache(min_r_squared=0.0)
        (seeded,) = run_sigma2n_batch([_request(1)], fast_cache=cache)
        (hit,) = run_sigma2n_batch([_request(2)], fast_cache=cache)
        assert hit.tier == "fast"
        assert hit.seed == _request(2).seed
        assert hit.b_thermal_hz == seeded.b_thermal_hz  # fitted, shared
        expected = np.asarray(
            sigma2_n_thermal(seeded.b_thermal_hz, seeded.f0_hz, seeded.n_values)
        ) + np.asarray(
            sigma2_n_flicker(seeded.b_flicker_hz2, seeded.f0_hz, seeded.n_values)
        )
        np.testing.assert_array_equal(hit.sigma2_s2, expected)

    def test_mixed_hits_and_misses_preserve_order(self):
        cache = FastTierCache(min_r_squared=0.0)
        run_sigma2n_batch([_request(1)], fast_cache=cache)  # warm one key
        group = [
            _request(10),  # hit
            _request(11, b_thermal_hz=70.0),  # miss
            _request(12),  # hit
        ]
        results = run_sigma2n_batch(group, fast_cache=cache)
        assert [result.tier for result in results] == ["fast", "exact", "fast"]
        assert [result.seed for result in results] == [r.seed for r in group]
        assert cache.stats()["size"] == 2

    def test_execute_batch_routes_the_cache(self):
        cache = FastTierCache(min_r_squared=0.0)
        execute_batch([_request(1)], fast_cache=cache)
        (hit,) = execute_batch([_request(2)], fast_cache=cache)
        assert hit.tier == "fast"


class TestAccuracyGate:
    def test_well_conditioned_campaign_passes_the_default_gate(self):
        """The standard serving workload must actually be cacheable: its
        Eq. 11 fit explains the measured curve (r^2 >= 0.95), and the fast
        interpolation stays close to the exact curve it replaces."""
        cache = FastTierCache()  # default gate 0.95
        (exact,) = run_sigma2n_batch([_request(1)], fast_cache=cache)
        assert exact.r_squared >= 0.95
        assert cache.stats()["size"] == 1
        (fast,) = run_sigma2n_batch([_request(2)], fast_cache=cache)
        assert fast.tier == "fast"
        ratio = fast.sigma2_s2 / exact.sigma2_s2
        assert np.all(np.abs(np.log10(ratio)) < 0.35)


class TestServiceIntegration:
    def test_service_serves_and_counts_the_fast_tier(self):
        async def scenario():
            config = ServiceConfig(max_batch=4, max_wait_ms=1.0)
            async with TRNGService(config) as service:
                first = await service.get_sigma2n(_request(1))
                second = await service.get_sigma2n(_request(2))
                return first, second, service.stats.snapshot()

        first, second, stats = asyncio.run(scenario())
        assert first.tier == "exact"
        assert second.tier == "fast"
        fast_stats = stats["fast_tier"]
        assert fast_stats["hits"] == 1 and fast_stats["misses"] == 1
        assert "plan_cache" in stats

    def test_exact_requests_still_exact_through_the_service(self):
        async def scenario():
            config = ServiceConfig(max_batch=4, max_wait_ms=1.0)
            async with TRNGService(config) as service:
                request = Sigma2NRequest(n_periods=N_PERIODS, seed=3)
                return await service.get_sigma2n(request)

        served = asyncio.run(scenario())
        (reference,) = run_sigma2n_batch([Sigma2NRequest(n_periods=N_PERIODS, seed=3)])
        assert served.tier == "exact"
        np.testing.assert_array_equal(served.sigma2_s2, reference.sigma2_s2)


class TestProtocol:
    def test_tier_round_trips_the_wire(self):
        _id, kind, fields = parse_request_line(
            '{"id": 1, "kind": "sigma2n", "n_periods": 64, "seed": 5, '
            '"tier": "fast"}'
        )
        request = build_request(kind, fields)
        assert request.tier == "fast"
        (result,) = run_sigma2n_batch([_request(1)])
        payload = result_to_payload(result)
        assert payload["tier"] == "exact"
