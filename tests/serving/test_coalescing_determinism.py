"""Coalescing determinism: served results == solo-served results, bit for bit.

The serving-layer counterpart of ``tests/engine/test_distributed_invariance``:
where sharding must be pure bookkeeping for campaigns, *coalescing* must be
pure bookkeeping for requests.  For every ``max_batch`` and every arrival
pattern, the bits (or sigma^2_N curves and fits) a request receives must be
``np.array_equal`` to what the same request receives from a ``max_batch=1``
service — because each request derives its engine RNG stream from its own
seed, never from its batch companions.

The ground truth is computed once per request through the engine bridge with
a single-request batch (the solo-served path), so every serving
configuration is compared against the same reference arrays.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.serving import BitsRequest, ServiceConfig, Sigma2NRequest, TRNGService
from repro.serving.scatter import run_bits_batch, run_sigma2n_batch

MAX_BATCHES = (1, 4, 32)
ARRIVALS = ("burst", "trickle", "interleaved")

#: Two coalescing groups (different dividers) with heterogeneous n_bits, so
#: group routing, deferred requeueing and prefix slicing are all exercised.
BIT_REQUESTS = [
    BitsRequest(
        n_bits=16 + 3 * (index % 5),
        divider=(8, 16)[index % 2],
        seed=52_000 + index,
    )
    for index in range(12)
]

SIGMA_REQUESTS = [
    Sigma2NRequest(
        n_periods=2048,
        b_thermal_hz=100.0 * (1 + index % 3),
        seed=63_000 + index,
    )
    for index in range(6)
]


@pytest.fixture(scope="module")
def solo_bits():
    """Ground truth: every request served alone through the engine bridge."""
    return [run_bits_batch([request])[0] for request in BIT_REQUESTS]


@pytest.fixture(scope="module")
def solo_sigma():
    return [run_sigma2n_batch([request])[0] for request in SIGMA_REQUESTS]


def serve_all(requests, max_batch: int, arrival: str):
    """Serve the request list through one service with the given arrival."""

    async def scenario():
        config = ServiceConfig(
            max_batch=max_batch, max_wait_ms=40.0, max_pending=len(requests)
        )
        async with TRNGService(config) as service:

            async def submit(request, delay: float):
                if delay:
                    await asyncio.sleep(delay)
                if isinstance(request, BitsRequest):
                    return await service.get_bits(request)
                return await service.get_sigma2n(request)

            if arrival == "burst":
                delays = [0.0] * len(requests)
            elif arrival == "trickle":
                delays = [0.004 * index for index in range(len(requests))]
            else:  # interleaved: the two groups alternate in time
                delays = [0.002 * (index % 4) for index in range(len(requests))]
            results = await asyncio.gather(
                *(
                    submit(request, delay)
                    for request, delay in zip(requests, delays)
                )
            )
            return results, service.stats.snapshot()

    return asyncio.run(scenario())


class TestBitsDeterminism:
    @pytest.mark.parametrize("max_batch", MAX_BATCHES)
    @pytest.mark.parametrize("arrival", ARRIVALS)
    def test_bits_identical_solo_or_coalesced(
        self, max_batch, arrival, solo_bits
    ):
        results, stats = serve_all(BIT_REQUESTS, max_batch, arrival)
        assert stats["completed"] == len(BIT_REQUESTS)
        for request, result, reference in zip(
            BIT_REQUESTS, results, solo_bits
        ):
            assert result.seed == request.seed
            assert result.n_bits == request.n_bits
            assert np.array_equal(result.bits, reference.bits), (
                f"seed {request.seed} (D={request.divider}, "
                f"n={request.n_bits}): served bits != solo bits "
                f"under max_batch={max_batch}, arrival={arrival}"
            )

    def test_burst_actually_coalesces(self, solo_bits):
        _, stats = serve_all(BIT_REQUESTS, 32, "burst")
        # Determinism must not be vacuous: the burst really was batched.
        assert stats["max_batch_size"] > 1
        assert stats["batches"] < len(BIT_REQUESTS)

    def test_serial_mode_never_batches(self, solo_bits):
        _, stats = serve_all(BIT_REQUESTS, 1, "burst")
        assert stats["max_batch_size"] == 1
        assert stats["batches"] == len(BIT_REQUESTS)


class TestSigma2NDeterminism:
    @pytest.mark.parametrize("max_batch", MAX_BATCHES)
    def test_curves_and_fits_identical_solo_or_coalesced(
        self, max_batch, solo_sigma
    ):
        results, stats = serve_all(SIGMA_REQUESTS, max_batch, "burst")
        assert stats["completed"] == len(SIGMA_REQUESTS)
        for request, result, reference in zip(
            SIGMA_REQUESTS, results, solo_sigma
        ):
            assert result.seed == request.seed
            assert np.array_equal(result.n_values, reference.n_values)
            assert np.array_equal(result.sigma2_s2, reference.sigma2_s2)
            assert np.array_equal(
                result.realization_counts, reference.realization_counts
            )
            assert result.b_thermal_hz == reference.b_thermal_hz
            assert result.b_flicker_hz2 == reference.b_flicker_hz2
            assert result.r_squared == reference.r_squared

    def test_mixed_kind_burst_stays_deterministic(self, solo_bits, solo_sigma):
        requests = [
            item
            for pair in zip(BIT_REQUESTS[:6], SIGMA_REQUESTS)
            for item in pair
        ]
        references = [
            item for pair in zip(solo_bits[:6], solo_sigma) for item in pair
        ]
        results, stats = serve_all(requests, 32, "burst")
        assert stats["completed"] == len(requests)
        for request, result, reference in zip(requests, results, references):
            if isinstance(request, BitsRequest):
                assert np.array_equal(result.bits, reference.bits)
            else:
                assert np.array_equal(result.sigma2_s2, reference.sigma2_s2)
                assert result.b_thermal_hz == reference.b_thermal_hz
