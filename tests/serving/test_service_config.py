"""ServiceConfig: validation, parsing, the legacy-kwarg shim, protocol v1."""

from __future__ import annotations

import argparse

import pytest

from repro.serving import (
    PROTOCOL_VERSION,
    ProtocolError,
    ServiceConfig,
    TRNGService,
)
from repro.serving.protocol import (
    error_envelope,
    parse_request_payload,
    response_envelope,
)


class TestServiceConfigValidation:
    def test_defaults_are_valid(self):
        config = ServiceConfig()
        assert config.max_batch == 32
        assert config.overflow == "reject"
        assert config.class_wait_ms == ()
        assert config.fast_tier is True
        assert not config.uses_fabric

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_wait_ms": -1.0},
            {"max_pending": 0},
            {"overflow": "drop"},
            {"spawn_workers": -1},
            {"backend": "gpu"},
            {"class_wait_ms": {"realtime": 1.0}},
            {"class_wait_ms": {"interactive": -2.0}},
        ],
    )
    def test_rejects_invalid_values(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)

    def test_class_wait_accepts_string_mapping_and_pairs(self):
        from_string = ServiceConfig(class_wait_ms="interactive=0.5, batch=20")
        from_mapping = ServiceConfig(
            class_wait_ms={"batch": 20.0, "interactive": 0.5}
        )
        from_pairs = ServiceConfig(
            class_wait_ms=(("interactive", 0.5), ("batch", 20.0))
        )
        assert from_string == from_mapping == from_pairs
        assert from_string.class_waits == {"interactive": 0.5, "batch": 20.0}

    def test_workers_remote_accepts_comma_string(self):
        config = ServiceConfig(workers_remote="h1:1234, h2:5678")
        assert config.workers_remote == ("h1:1234", "h2:5678")
        assert config.uses_fabric

    def test_replace_returns_updated_frozen_copy(self):
        base = ServiceConfig()
        tuned = base.replace(max_batch=4, max_wait_ms=0.0)
        assert tuned.max_batch == 4
        assert base.max_batch == 32
        with pytest.raises(AttributeError):
            tuned.max_batch = 8

    def test_from_args_reads_only_present_attributes(self):
        args = argparse.Namespace(
            max_batch=8, max_wait_ms=1.5, seed=7, unrelated="x"
        )
        config = ServiceConfig.from_args(args)
        assert config.max_batch == 8
        assert config.max_wait_ms == 1.5
        assert config.seed == 7
        assert config.max_pending == 1024  # untouched default

    def test_config_is_hashable(self):
        assert hash(ServiceConfig()) == hash(ServiceConfig())


class TestLegacyKwargShim:
    def test_legacy_kwargs_build_the_equivalent_config(self):
        with pytest.warns(DeprecationWarning, match="ServiceConfig"):
            service = TRNGService(max_batch=4, max_wait_ms=1.0, overflow="wait")
        assert service.config == ServiceConfig(
            max_batch=4, max_wait_ms=1.0, overflow="wait"
        )

    def test_config_object_does_not_warn(self, recwarn):
        service = TRNGService(ServiceConfig(max_batch=4))
        assert service.config.max_batch == 4
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_config_plus_legacy_kwargs_is_an_error(self):
        with pytest.raises(TypeError, match="not both"):
            TRNGService(ServiceConfig(), max_batch=4)

    def test_unknown_kwarg_is_an_error(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            TRNGService(max_bach=4)


class TestProtocolVersion:
    def test_absent_version_means_version_one(self):
        request_id, kind, fields = parse_request_payload(
            {"id": 3, "kind": "ping"}
        )
        assert (request_id, kind, fields) == (3, "ping", {})

    def test_current_version_is_accepted(self):
        _, kind, _ = parse_request_payload(
            {"v": PROTOCOL_VERSION, "kind": "ping"}
        )
        assert kind == "ping"

    def test_unknown_version_is_rejected_with_structured_code(self):
        with pytest.raises(ProtocolError) as info:
            parse_request_payload({"v": 99, "id": 5, "kind": "ping"})
        assert info.value.code == "unsupported_version"
        assert info.value.request_id == 5

    @pytest.mark.parametrize("version", [True, "1", 1.0, None])
    def test_non_integer_version_is_rejected(self, version):
        with pytest.raises(ProtocolError) as info:
            parse_request_payload({"v": version, "kind": "ping"})
        assert info.value.code == "unsupported_version"

    def test_envelopes_carry_the_version(self):
        assert response_envelope(1, {})["v"] == PROTOCOL_VERSION
        error = error_envelope(1, "nope", code="overloaded")
        assert error["v"] == PROTOCOL_VERSION
        assert error["code"] == "overloaded"
        assert error["ok"] is False
