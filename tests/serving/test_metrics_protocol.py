"""The ``metrics`` wire kind: live scrapes of server and worker registries."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.engine.distributed import Sigma2NCampaignSpec, spec_to_json
from repro.engine.distributed.fabric.worker_loop import WorkerServer
from repro.serving import TRNGService
from repro.serving.protocol import ProtocolError, parse_request_line
from repro.serving.server import handle_request_line


def _serve_line(service: TRNGService, line: str) -> dict:
    async def runner():
        async with service:
            return await handle_request_line(service, line)

    return json.loads(asyncio.run(runner()))


class TestParseMetricsKind:
    def test_metrics_kind_accepted_with_optional_format(self):
        assert parse_request_line('{"kind": "metrics"}') == (None, "metrics", {})
        request_id, kind, fields = parse_request_line(
            '{"id": 9, "kind": "metrics", "format": "prometheus"}'
        )
        assert (request_id, kind) == (9, "metrics")
        assert fields == {"format": "prometheus"}

    def test_unknown_fields_rejected(self):
        with pytest.raises(ProtocolError, match="unknown fields"):
            parse_request_line('{"kind": "metrics", "nope": 1}')

    def test_shard_and_batch_accept_a_trace_envelope(self):
        _, _, fields = parse_request_line(
            '{"kind": "batch", "requests": [], '
            '"trace": {"trace_id": "t", "parent_span_id": "p"}}'
        )
        assert fields["trace"] == {"trace_id": "t", "parent_span_id": "p"}


class TestServerMetricsKind:
    def test_json_scrape_covers_service_and_process_registries(self):
        service = TRNGService()

        async def runner():
            async with service:
                await service.get_bits(n_bits=16, divider=8, seed=3)
                return await handle_request_line(
                    service, '{"id": 1, "kind": "metrics"}'
                )

        response = json.loads(asyncio.run(runner()))
        assert response["ok"] is True
        result = response["result"]
        assert result["kind"] == "metrics"
        assert result["format"] == "json"
        metrics = result["metrics"]
        # Service-scope instruments...
        assert metrics["serve_requests_total"]["value"] == {"kind=bits": 1}
        assert "serve_queue_depth" in metrics
        assert "serve_queue_wait_seconds" in metrics
        assert metrics["serve_execute_seconds"]["value"]["count"] == 1
        # ...and process-scope ones (plan cache, kernel) in the same scrape.
        assert "plan_cache_hits_total" in metrics
        assert "plan_cache_misses_total" in metrics
        assert "engine_kernel_block_seconds" in metrics

    def test_prometheus_scrape_is_text_exposition(self):
        response = _serve_line(
            TRNGService(), '{"id": 2, "kind": "metrics", "format": "prometheus"}'
        )
        assert response["ok"] is True
        text = response["result"]["text"]
        assert "# TYPE serve_requests_total counter" in text
        assert "# TYPE serve_execute_seconds histogram" in text
        assert 'serve_execute_seconds_bucket{le="+Inf"}' in text

    def test_unknown_format_is_a_protocol_error(self):
        response = _serve_line(
            TRNGService(), '{"id": 3, "kind": "metrics", "format": "xml"}'
        )
        assert response["ok"] is False
        assert "unknown metrics format" in response["error"]
        assert response["id"] == 3


class TestWorkerMetricsKind:
    def test_worker_json_scrape(self):
        worker = WorkerServer()
        response = json.loads(
            asyncio.run(worker.handle_line('{"id": 1, "kind": "metrics"}'))
        )
        assert response["ok"] is True
        metrics = response["result"]["metrics"]
        assert response["result"]["role"] == "worker"
        assert metrics["worker_shards_served_total"]["value"] == 0
        assert "plan_cache_hits_total" in metrics

    def test_worker_prometheus_scrape(self):
        worker = WorkerServer()
        response = json.loads(
            asyncio.run(
                worker.handle_line(
                    '{"id": 2, "kind": "metrics", "format": "prometheus"}'
                )
            )
        )
        assert "# TYPE worker_shards_served_total counter" in (
            response["result"]["text"]
        )


class TestWorkerTracePropagation:
    def test_shard_reply_continues_the_coordinator_trace(self):
        worker = WorkerServer()
        spec = Sigma2NCampaignSpec(batch_size=2, n_periods=512, seed=11)
        message = {
            "id": "shard-0",
            "kind": "shard",
            "spec": spec_to_json(spec),
            "index": 0,
            "start": 0,
            "stop": 1,
            "trace": {"trace_id": "feedc0de" * 2, "parent_span_id": "ab" * 8},
        }
        response = json.loads(
            asyncio.run(worker.handle_line(json.dumps(message)))
        )
        assert response["ok"] is True
        spans = response["result"]["spans"]
        assert len(spans) == 1
        record = spans[0]
        assert record["name"] == "worker.shard"
        assert record["trace_id"] == "feedc0de" * 2
        assert record["parent_id"] == "ab" * 8
        assert record["attributes"] == {"shard": 0, "rows": 1}
        assert record["status"] == "ok"
        assert ":" in record["host"]
        # The worker kept its own copy too (for its own metrics scrapes).
        assert worker.spans.records()[0].trace_id == "feedc0de" * 2
        assert worker.shards_served == 1

    def test_untraced_shard_still_returns_spans(self):
        worker = WorkerServer()
        spec = Sigma2NCampaignSpec(batch_size=2, n_periods=512, seed=11)
        message = {
            "id": "shard-0",
            "kind": "shard",
            "spec": spec_to_json(spec),
            "index": 0,
            "start": 0,
            "stop": 2,
        }
        response = json.loads(
            asyncio.run(worker.handle_line(json.dumps(message)))
        )
        spans = response["result"]["spans"]
        assert len(spans) == 1
        assert spans[0]["parent_id"] is None
