"""Serving-side fabric tests: dispatched batches are bitwise-identical to
local serving, dead workers fail over, and the wire helpers round-trip."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.obs import SpanCollector
from repro.serving import BitsRequest, ServiceConfig, Sigma2NRequest, TRNGService
from repro.serving.fabric_dispatch import FabricDispatcher
from repro.serving.fast_tier import FastTierCache
from repro.serving.protocol import (
    ProtocolError,
    build_request,
    decode_partial,
    encode_partial,
    payload_to_result,
    request_to_payload,
    result_to_payload,
)
from repro.serving.scatter import execute_batch
from repro.serving.server import handle_request_line


class TestWireHelpers:
    @pytest.mark.parametrize(
        "request_",
        [
            BitsRequest(n_bits=32, divider=256, seed=7),
            Sigma2NRequest(n_periods=2048, seed=9, n_sweep=(1, 2, 4)),
        ],
    )
    def test_request_payload_rebuilds_the_same_request(self, request_):
        payload = request_to_payload(request_)
        kind = payload.pop("kind")
        rebuilt = build_request(
            kind, {k: v for k, v in payload.items() if v is not None}
        )
        assert rebuilt == request_

    def test_result_payload_round_trip(self):
        results = execute_batch([BitsRequest(n_bits=16, divider=128, seed=3)])
        restored = payload_to_result(result_to_payload(results[0]))
        np.testing.assert_array_equal(restored.bits, results[0].bits)
        assert (restored.seed, restored.divider) == (3, 128)

    def test_partial_encoding_round_trips_bitwise(self):
        partial = {
            "floats": np.linspace(0.0, 1.0, 7),
            "ints": np.arange(5, dtype=np.int64),
        }
        restored = decode_partial(encode_partial(partial))
        for name, values in partial.items():
            np.testing.assert_array_equal(restored[name], values)
            assert restored[name].dtype == values.dtype

    def test_decode_partial_rejects_garbage(self):
        with pytest.raises(ProtocolError, match="invalid partial encoding"):
            decode_partial("not base64!!")


def _serve_all(service, requests):
    async def runner():
        async with service:
            results = []
            for request in requests:
                if isinstance(request, BitsRequest):
                    results.append(await service.get_bits(request))
                else:
                    results.append(await service.get_sigma2n(request))
            return results

    return asyncio.run(runner())


REQUESTS = [
    BitsRequest(n_bits=64, divider=512, seed=7),
    BitsRequest(n_bits=96, divider=1000, seed=8),
    Sigma2NRequest(n_periods=2048, seed=9),
]


class TestFabricServing:
    def test_fabric_served_equals_local_served_bitwise(self):
        local = _serve_all(TRNGService(ServiceConfig(max_batch=1)), list(REQUESTS))
        fabric = FabricDispatcher.from_endpoints(spawn=1)
        try:
            remote = _serve_all(
                TRNGService(ServiceConfig(max_batch=1), fabric=fabric), list(REQUESTS)
            )
            stats = fabric.stats()
        finally:
            fabric.close()
        assert stats["remote_batches"] == len(REQUESTS)
        for mine, theirs in zip(local, remote):
            if hasattr(mine, "bits"):
                np.testing.assert_array_equal(theirs.bits, mine.bits)
            else:
                np.testing.assert_array_equal(theirs.sigma2_s2, mine.sigma2_s2)
                np.testing.assert_array_equal(theirs.n_values, mine.n_values)

    def test_stats_snapshot_includes_fabric_section(self):
        fabric = FabricDispatcher.from_endpoints(spawn=1)
        try:
            service = TRNGService(ServiceConfig(max_batch=1), fabric=fabric)
            _serve_all(service, [REQUESTS[0]])
            snapshot = service.stats.snapshot()
        finally:
            fabric.close()
        assert snapshot["fabric"]["remote_batches"] == 1
        assert snapshot["fabric"]["failovers"] == 0

    def test_dead_fleet_fails_over_to_local(self):
        reference = execute_batch([REQUESTS[0]])
        fabric = FabricDispatcher.from_endpoints(spawn=1)
        try:
            for link in fabric.workers:
                link.process.kill()
                link.process.wait()
            served = fabric.execute_batch([REQUESTS[0]])
            stats = fabric.stats()
        finally:
            fabric.close()
        np.testing.assert_array_equal(served[0].bits, reference[0].bits)
        assert stats["failovers"] >= 1
        assert stats["local_batches"] >= 1
        assert stats["workers"] == []

    def test_strict_mode_raises_without_workers(self):
        fabric = FabricDispatcher.from_endpoints(spawn=1, fallback_local=False)
        try:
            for link in fabric.workers:
                link.process.kill()
                link.process.wait()
            from repro.engine.distributed import WorkerUnavailable

            with pytest.raises(WorkerUnavailable):
                fabric.execute_batch([REQUESTS[0]])
        finally:
            fabric.close()

    def test_fast_tier_groups_are_served_locally(self):
        fabric = FabricDispatcher.from_endpoints(spawn=1)
        try:
            cache = FastTierCache()
            request = Sigma2NRequest(n_periods=2048, seed=9, tier="fast")
            fabric.execute_batch([request], fast_cache=cache)
            stats = fabric.stats()
        finally:
            fabric.close()
        assert stats["local_batches"] == 1
        assert stats["remote_batches"] == 0

    def test_empty_dispatcher_is_refused(self):
        with pytest.raises(ValueError, match="at least one worker"):
            FabricDispatcher([])


class TestServeTracePropagation:
    def test_worker_batch_spans_join_the_service_trace(self):
        collector = SpanCollector()
        fabric = FabricDispatcher.from_endpoints(spawn=1, spans=collector)
        try:
            service = TRNGService(
                ServiceConfig(max_batch=1), fabric=fabric, spans=collector
            )
            _serve_all(service, [REQUESTS[0]])
        finally:
            fabric.close()
        by_name = {record.name: record for record in collector.records()}
        execute = by_name["serve.execute"]
        remote = by_name["worker.batch"]
        # The worker continued the trace the dispatcher stamped on the wire:
        # same trace, parented under this request's serve.execute span, and
        # executed in a different process.
        assert remote.trace_id == execute.trace_id
        assert remote.parent_id == execute.span_id
        assert remote.host != execute.host
        assert remote.status == "ok"
        assert remote.attributes["requests"] == 1


class TestWorkerOnlyKinds:
    @pytest.mark.parametrize("kind", ["shard", "batch", "shutdown"])
    def test_public_server_rejects_worker_kinds(self, kind):
        async def runner():
            async with TRNGService() as service:
                return await handle_request_line(
                    service, f'{{"id": 1, "kind": "{kind}"}}'
                )

        line = asyncio.run(runner())
        assert '"ok": false' in line
        assert "fabric workers" in line
