"""Streaming sessions: chunk invariance, idle expiry, LRU eviction."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.serving import BitsRequest, SessionManager, StreamSession
from repro.serving.http.sessions import SessionExpired, SessionNotFound
from repro.serving.scatter import run_bits_batch


def _request(seed: int = 11, divider: int = 8) -> BitsRequest:
    return BitsRequest(n_bits=1, divider=divider, seed=seed)


class TestStreamSession:
    def test_chunked_reads_match_the_one_shot_serving_path(self):
        total = 48
        session = StreamSession(_request(seed=11))
        chunks = []
        for n_bits in (5, 1, 17, total - 23):
            offset, bits = session.read(n_bits)
            assert offset == sum(len(chunk) for chunk in chunks)
            chunks.append(bits)
        streamed = np.concatenate(chunks)
        one_shot = run_bits_batch(
            [BitsRequest(n_bits=total, divider=8, seed=11)]
        )[0].bits
        assert np.array_equal(streamed, one_shot)
        assert session.bits_served == total

    def test_chunking_choice_never_changes_the_stream(self):
        reference = StreamSession(_request(seed=7)).read(32)[1]
        chunked = StreamSession(_request(seed=7))
        resumed = np.concatenate(
            [chunked.read(n)[1] for n in (1, 2, 3, 26)]
        )
        assert np.array_equal(reference, resumed)

    def test_rejects_nonpositive_reads(self):
        with pytest.raises(ValueError, match="n_bits"):
            StreamSession(_request()).read(0)


class TestSessionManager:
    def test_open_get_close_round_trip(self):
        manager = SessionManager(max_sessions=4, idle_ttl_s=60.0)
        session_id, session = manager.open(_request())
        assert manager.get(session_id) is session
        assert len(manager) == 1
        assert manager.close(session_id) is True
        assert len(manager) == 0
        # Closed ids answer "expired/gone", and closing again is a no-op.
        with pytest.raises(SessionExpired):
            manager.get(session_id)
        assert manager.close(session_id) is False

    def test_unknown_id_is_not_found(self):
        manager = SessionManager()
        with pytest.raises(SessionNotFound):
            manager.get("deadbeef")
        with pytest.raises(SessionNotFound):
            manager.close("deadbeef")

    def test_idle_sessions_expire(self):
        registry = MetricsRegistry("test")
        manager = SessionManager(idle_ttl_s=0.01, metrics=registry)
        session_id, _ = manager.open(_request())
        time.sleep(0.03)
        with pytest.raises(SessionExpired):
            manager.get(session_id)
        assert registry.get("serving_sessions_expired_total").value() == 1
        assert registry.get("serving_sessions_active").value() == 0

    def test_sweep_expires_idle_sessions_in_bulk(self):
        manager = SessionManager(idle_ttl_s=0.01)
        for seed in range(3):
            manager.open(_request(seed=seed))
        time.sleep(0.03)
        assert manager.sweep() == 3
        assert len(manager) == 0

    def test_capacity_evicts_least_recently_used(self):
        registry = MetricsRegistry("test")
        manager = SessionManager(
            max_sessions=2, idle_ttl_s=60.0, metrics=registry
        )
        first, _ = manager.open(_request(seed=1))
        second, _ = manager.open(_request(seed=2))
        manager.get(first)  # touch: now `second` is least recently used
        third, _ = manager.open(_request(seed=3))
        with pytest.raises(SessionExpired):
            manager.get(second)
        assert manager.get(first) is not None
        assert manager.get(third) is not None
        assert registry.get("serving_sessions_evicted_total").value() == 1
        assert registry.get("serving_sessions_active").value() == 2

    def test_eviction_does_not_disturb_survivor_streams(self):
        # A session's bits depend only on its own seed — eviction of a
        # neighbour must not shift the survivor's stream.
        manager = SessionManager(max_sessions=2, idle_ttl_s=60.0)
        keeper_id, keeper = manager.open(_request(seed=5))
        head = keeper.read(16)[1]
        manager.open(_request(seed=6))
        manager.get(keeper_id)  # touch: the neighbour is now the LRU
        manager.open(_request(seed=7))  # evicts the LRU neighbour
        tail = manager.get(keeper_id).read(16)[1]
        one_shot = run_bits_batch(
            [BitsRequest(n_bits=32, divider=8, seed=5)]
        )[0].bits
        assert np.array_equal(np.concatenate([head, tail]), one_shot)

    def test_close_all_empties_the_manager(self):
        manager = SessionManager()
        ids = [manager.open(_request(seed=seed))[0] for seed in range(3)]
        assert manager.close_all() == 3
        for session_id in ids:
            with pytest.raises(SessionExpired):
                manager.get(session_id)
