"""HTTP gateway: TCP bitwise equivalence, limits, sessions, WebSocket."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.serving import ServiceConfig, TRNGService, TRNGServer
from repro.serving.http import CODE_STATUS, HTTPGateway, http_request
from repro.serving.http.wire import (
    OP_CLOSE,
    OP_TEXT,
    encode_client_frame,
    websocket_accept,
)
from repro.serving.protocol import string_to_bits
from repro.serving.requests import BitsRequest
from repro.serving.scatter import run_bits_batch
from repro.serving.server import seed_stream


def run(coroutine):
    return asyncio.run(coroutine)


class _Stack:
    """One service with both front doors (HTTP gateway + TCP server)."""

    def __init__(self, default_seed=None, max_body=None, **config_kwargs):
        self.config = ServiceConfig(**config_kwargs)
        self.service = TRNGService(self.config)
        gateway_kwargs = {} if max_body is None else {"max_body": max_body}
        self.gateway = HTTPGateway(
            self.service, port=0, default_seed=default_seed, **gateway_kwargs
        )
        self.server = TRNGServer(self.service, port=0, default_seed=default_seed)

    async def __aenter__(self):
        await self.service.start()
        await self.gateway.start()
        await self.server.start()
        return self

    async def __aexit__(self, *exc_info):
        await self.server.stop()
        await self.gateway.stop()
        await self.service.stop()

    async def http(self, method, path, payload=None):
        status, body = await http_request(
            "127.0.0.1", self.gateway.port, method, path, payload
        )
        return status, json.loads(body) if body else None

    async def tcp(self, payload):
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", self.server.port
        )
        writer.write((json.dumps(payload) + "\n").encode())
        await writer.drain()
        raw = await reader.readline()
        writer.close()
        await writer.wait_closed()
        return json.loads(raw)


BITS_BODY = {"kind": "bits", "n_bits": 16, "divider": 8, "seed": 101}
SIGMA_BODY = {"kind": "sigma2n", "n_periods": 256, "seed": 202}


class TestTransportEquivalence:
    @pytest.mark.parametrize("max_batch", [1, 8], ids=["solo", "coalesced"])
    @pytest.mark.parametrize(
        "body", [BITS_BODY, SIGMA_BODY], ids=["bits", "sigma2n"]
    )
    def test_http_result_is_bitwise_identical_to_tcp(self, max_batch, body):
        async def scenario():
            async with _Stack(max_batch=max_batch, max_wait_ms=20.0) as stack:
                path = f"/v1/{body['kind']}"
                http_call = stack.http("POST", path, dict(body))
                tcp_call = stack.tcp(dict(body))
                if max_batch > 1:
                    # Concurrent submission: both edges land in one window.
                    (status, via_http), via_tcp = await asyncio.gather(
                        http_call, tcp_call
                    )
                else:
                    status, via_http = await http_call
                    via_tcp = await tcp_call
                assert status == 200
                assert via_http["ok"] and via_tcp["ok"]
                assert via_http["v"] == via_tcp["v"] == 1
                # The full result payloads must be identical objects —
                # bit strings, curves, fits, everything.
                assert via_http["result"] == via_tcp["result"]

        run(scenario())

    @pytest.mark.parametrize("kind", ["bits", "sigma2n"])
    def test_unseeded_requests_pin_a_replayable_seed(self, kind):
        async def scenario():
            async with _Stack(max_batch=4, max_wait_ms=5.0) as stack:
                body = {k: v for k, v in
                        (BITS_BODY if kind == "bits" else SIGMA_BODY).items()
                        if k != "seed"}
                status, fresh = await stack.http("POST", f"/v1/{kind}", body)
                assert status == 200 and fresh["ok"]
                seed = fresh["result"]["seed"]
                replay = await stack.tcp({**body, "seed": seed})
                assert replay["result"] == fresh["result"]

        run(scenario())

    def test_server_seed_stream_is_shared_across_transports(self):
        async def scenario():
            # Same root seed -> the n-th unseeded request gets the same
            # pinned seed regardless of which edge carried it.
            async with _Stack(default_seed=seed_stream(9)) as first_stack:
                _, via_http = await first_stack.http(
                    "POST", "/v1/bits", {"n_bits": 8, "divider": 8}
                )
            async with _Stack(default_seed=seed_stream(9)) as second_stack:
                via_tcp = await second_stack.tcp(
                    {"kind": "bits", "n_bits": 8, "divider": 8}
                )
            assert via_http["result"] == via_tcp["result"]

        run(scenario())


class TestHTTPErrors:
    def test_error_code_to_status_mapping_is_total(self):
        from repro.serving.protocol import ERROR_CODES

        assert set(CODE_STATUS) == set(ERROR_CODES)

    def test_unsupported_protocol_version_maps_to_400(self):
        async def scenario():
            async with _Stack() as stack:
                status, envelope = await stack.http(
                    "POST", "/v1/bits", {"v": 99, **BITS_BODY}
                )
                assert status == 400
                assert envelope["code"] == "unsupported_version"

        run(scenario())

    def test_unknown_route_and_wrong_method(self):
        async def scenario():
            async with _Stack() as stack:
                status, envelope = await stack.http("POST", "/v1/nope", {})
                assert status == 404
                status, envelope = await stack.http("GET", "/v1/bits")
                assert status == 405
                assert envelope["ok"] is False

        run(scenario())

    def test_invalid_json_body_is_a_400(self):
        async def scenario():
            async with _Stack() as stack:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", stack.gateway.port
                )
                body = b"{not json"
                writer.write(
                    b"POST /v1/bits HTTP/1.1\r\nhost: t\r\n"
                    b"content-length: %d\r\nconnection: close\r\n\r\n%b"
                    % (len(body), body)
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                await writer.wait_closed()
                assert raw.startswith(b"HTTP/1.1 400 ")

        run(scenario())

    def test_malformed_request_line_gets_400_then_close(self):
        async def scenario():
            async with _Stack() as stack:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", stack.gateway.port
                )
                writer.write(b"COMPLETE GARBAGE\r\n\r\n")
                await writer.drain()
                raw = await reader.read()  # server answers then closes
                writer.close()
                await writer.wait_closed()
                assert raw.startswith(b"HTTP/1.1 400 ")

        run(scenario())

    def test_oversized_body_is_rejected_with_413(self):
        async def scenario():
            async with _Stack(max_body=512) as stack:
                big = {"kind": "bits", "n_bits": 8, "junk": "x" * 2048}
                status, envelope = await stack.http("POST", "/v1/bits", big)
                assert status == 413
                assert envelope["ok"] is False

        run(scenario())

    def test_kind_mismatch_between_path_and_body_is_rejected(self):
        async def scenario():
            async with _Stack() as stack:
                status, _ = await stack.http("POST", "/v1/bits", SIGMA_BODY)
                assert status == 400

        run(scenario())


class TestObservabilityEndpoints:
    def test_metrics_serves_parseable_prometheus_exposition(self):
        async def scenario():
            async with _Stack() as stack:
                await stack.http("POST", "/v1/bits", dict(BITS_BODY))
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", stack.gateway.port
                )
                writer.write(
                    b"GET /metrics HTTP/1.1\r\nhost: t\r\n"
                    b"connection: close\r\n\r\n"
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                await writer.wait_closed()
            header_block, _, body = raw.partition(b"\r\n\r\n")
            headers = header_block.decode("latin-1").lower()
            assert "content-type: text/plain; version=0.0.4" in headers
            text = body.decode("utf-8")
            # Exposition format 0.0.4: every non-comment line is
            # `name[{labels}] value`.
            for line in text.splitlines():
                if not line or line.startswith("#"):
                    continue
                name, _, value = line.rpartition(" ")
                assert name and float(value) is not None
            assert "serve_requests_total" in text
            assert "serving_coalesce_wait_seconds" in text
            assert "http_requests_total" in text

        run(scenario())

    def test_healthz_reports_queue_and_session_state(self):
        async def scenario():
            async with _Stack() as stack:
                status, health = await stack.http("GET", "/healthz")
                assert status == 200
                assert health["status"] == "ok"
                assert health["sessions"] == 0
                assert health["fabric"] is False
                assert health["queue_depth"] == 0

        run(scenario())


class TestHTTPSessions:
    def test_session_chunks_match_one_shot_generation(self):
        async def scenario():
            async with _Stack() as stack:
                status, opened = await stack.http(
                    "POST", "/v1/sessions", {"divider": 8, "seed": 77}
                )
                assert status == 201
                session_id = opened["result"]["session"]
                chunks = []
                for n_bits in (5, 1, 26):
                    status, chunk = await stack.http(
                        "POST",
                        f"/v1/sessions/{session_id}/bits",
                        {"n_bits": n_bits},
                    )
                    assert status == 200
                    assert chunk["result"]["offset"] == sum(
                        c.size for c in chunks
                    )
                    chunks.append(string_to_bits(chunk["result"]["bits"]))
                status, info = await stack.http(
                    "GET", f"/v1/sessions/{session_id}"
                )
                assert info["result"]["bits_served"] == 32
                status, closed = await stack.http(
                    "DELETE", f"/v1/sessions/{session_id}"
                )
                assert status == 200 and closed["result"]["closed"] is True
                status, gone = await stack.http(
                    "POST", f"/v1/sessions/{session_id}/bits", {"n_bits": 1}
                )
                assert status == 410
                assert gone["code"] == "session_expired"
            one_shot = run_bits_batch(
                [BitsRequest(n_bits=32, divider=8, seed=77)]
            )[0].bits
            assert np.array_equal(np.concatenate(chunks), one_shot)

        run(scenario())

    def test_unknown_session_is_404_and_bad_reads_400(self):
        async def scenario():
            async with _Stack() as stack:
                status, envelope = await stack.http(
                    "POST", "/v1/sessions/feedc0de/bits", {"n_bits": 4}
                )
                assert status == 404
                assert envelope["code"] == "not_found"
                status, opened = await stack.http(
                    "POST", "/v1/sessions", {"divider": 8, "seed": 1}
                )
                session_id = opened["result"]["session"]
                status, _ = await stack.http(
                    "POST", f"/v1/sessions/{session_id}/bits", {"n_bits": 0}
                )
                assert status == 400
                status, _ = await stack.http(
                    "POST", "/v1/sessions", {"n_bits": 4}
                )
                assert status == 400  # sessions have no fixed length

        run(scenario())


async def _read_server_frame(reader):
    header = await reader.readexactly(2)
    opcode = header[0] & 0x0F
    length = header[1] & 0x7F
    if length == 126:
        length = int.from_bytes(await reader.readexactly(2), "big")
    elif length == 127:
        length = int.from_bytes(await reader.readexactly(8), "big")
    payload = await reader.readexactly(length) if length else b""
    return opcode, payload


class TestWebSocketStream:
    def test_websocket_session_stream_is_chunk_invariant(self):
        async def scenario():
            async with _Stack() as stack:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", stack.gateway.port
                )
                key = "dGhlIHNhbXBsZSBub25jZQ=="
                writer.write(
                    (
                        "GET /v1/stream HTTP/1.1\r\nhost: t\r\n"
                        "upgrade: websocket\r\nconnection: Upgrade\r\n"
                        f"sec-websocket-key: {key}\r\n"
                        "sec-websocket-version: 13\r\n\r\n"
                    ).encode()
                )
                await writer.drain()
                handshake = await reader.readuntil(b"\r\n\r\n")
                assert b"101 Switching Protocols" in handshake
                assert websocket_accept(key).encode() in handshake

                async def call(message):
                    writer.write(
                        encode_client_frame(
                            OP_TEXT,
                            json.dumps(message).encode(),
                            b"\x12\x34\x56\x78",
                        )
                    )
                    await writer.drain()
                    opcode, payload = await _read_server_frame(reader)
                    assert opcode == OP_TEXT
                    return json.loads(payload)

                opened = await call(
                    {"op": "open", "divider": 8, "seed": 55, "id": 1}
                )
                assert opened["ok"] and opened["id"] == 1
                session_id = opened["result"]["session"]
                chunks = []
                for n_bits in (9, 23):
                    reply = await call(
                        {"op": "read", "session": session_id, "n_bits": n_bits}
                    )
                    assert reply["ok"]
                    chunks.append(string_to_bits(reply["result"]["bits"]))
                bad = await call({"op": "warp"})
                assert bad["ok"] is False and bad["code"] == "bad_request"
                assert len(stack.gateway.sessions) == 1
                # Close frame: the server echoes and drops the connection,
                # taking its sessions with it.
                writer.write(
                    encode_client_frame(OP_CLOSE, b"", b"\x00\x01\x02\x03")
                )
                await writer.drain()
                opcode, _ = await _read_server_frame(reader)
                assert opcode == OP_CLOSE
                writer.close()
                await writer.wait_closed()
                await asyncio.sleep(0.05)
                assert len(stack.gateway.sessions) == 0
            one_shot = run_bits_batch(
                [BitsRequest(n_bits=32, divider=8, seed=55)]
            )[0].bits
            assert np.array_equal(np.concatenate(chunks), one_shot)

        run(scenario())

    def test_unmasked_client_frame_is_a_protocol_violation(self):
        async def scenario():
            async with _Stack() as stack:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", stack.gateway.port
                )
                writer.write(
                    (
                        "GET /v1/stream HTTP/1.1\r\nhost: t\r\n"
                        "upgrade: websocket\r\nconnection: Upgrade\r\n"
                        "sec-websocket-key: AAAA\r\n\r\n"
                    ).encode()
                )
                await writer.drain()
                await reader.readuntil(b"\r\n\r\n")
                writer.write(bytes([0x81, 0x02]) + b"{}")  # unmasked
                await writer.drain()
                opcode, payload = await _read_server_frame(reader)
                assert opcode == OP_CLOSE
                assert int.from_bytes(payload[:2], "big") == 1002
                writer.close()
                await writer.wait_closed()

        run(scenario())
