"""Wire protocol and end-to-end TCP serving tests."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.serving import (
    BitsRequest,
    ServiceConfig,
    TRNGServer,
    TRNGService,
    run_self_test,
)
from repro.serving.protocol import (
    ProtocolError,
    bits_to_string,
    build_request,
    parse_request_line,
    string_to_bits,
)
from repro.serving.scatter import run_bits_batch
from repro.serving.server import seed_stream


class TestBitEncoding:
    def test_round_trip(self):
        bits = np.array([0, 1, 1, 0, 1], dtype=np.int8)
        assert np.array_equal(string_to_bits(bits_to_string(bits)), bits)

    def test_rejects_non_binary_text(self):
        with pytest.raises(ProtocolError):
            string_to_bits("01x0")


class TestParseRequestLine:
    def test_bits_request_round_trip(self):
        request_id, kind, fields = parse_request_line(
            '{"id": 7, "kind": "bits", "n_bits": 16, "divider": 8, "seed": 3}'
        )
        assert (request_id, kind) == (7, "bits")
        request = build_request(kind, fields)
        assert isinstance(request, BitsRequest)
        assert (request.n_bits, request.divider, request.seed) == (16, 8, 3)

    def test_sigma2n_sweep_becomes_tuple(self):
        _, kind, fields = parse_request_line(
            '{"kind": "sigma2n", "n_periods": 4096, "n_sweep": [1, 2, 4]}'
        )
        request = build_request(kind, fields)
        assert request.n_sweep == (1, 2, 4)

    @pytest.mark.parametrize(
        "line, message_part",
        [
            ("not json", "invalid JSON"),
            ('["a", "list"]', "JSON object"),
            ('{"kind": "frobnicate"}', "unknown request kind"),
            ('{"kind": "bits", "n_bits": 8, "bogus": 1}', "unknown fields"),
            ('{"kind": "stats", "extra": 1}', "unexpected fields"),
        ],
    )
    def test_malformed_lines_raise_protocol_errors(self, line, message_part):
        with pytest.raises(ProtocolError, match=message_part):
            parse_request_line(line)

    def test_invalid_values_raise_protocol_errors(self):
        _, kind, fields = parse_request_line(
            '{"kind": "bits", "n_bits": 0}'
        )
        with pytest.raises(ProtocolError, match="invalid bits request"):
            build_request(kind, fields)

    @pytest.mark.parametrize(
        "line",
        [
            '{"kind": "sigma2n", "n_periods": 4096, "n_sweep": 8}',
            '{"kind": "bits", "n_bits": 64.5}',
            '{"kind": "sigma2n", "n_periods": 4096.5}',
        ],
    )
    def test_bad_field_values_are_client_errors_not_internal(self, line):
        # Regression: these used to escape as "internal error" responses.
        _, kind, fields = parse_request_line(line)
        with pytest.raises(ProtocolError, match=f"invalid {kind} request"):
            build_request(kind, fields)

    def test_default_seed_factory_fills_unseeded_requests(self):
        _, kind, fields = parse_request_line('{"kind": "bits", "n_bits": 8}')
        first = build_request(kind, fields, default_seed=seed_stream(5))
        again = build_request(kind, fields, default_seed=seed_stream(5))
        assert first.seed == again.seed  # same root, same arrival order

    def test_explicit_seed_wins_over_factory(self):
        _, kind, fields = parse_request_line(
            '{"kind": "bits", "n_bits": 8, "seed": 11}'
        )
        request = build_request(kind, fields, default_seed=seed_stream(5))
        assert request.seed == 11


async def _roundtrip(host: str, port: int, lines):
    reader, writer = await asyncio.open_connection(host, port)
    for line in lines:
        writer.write((json.dumps(line) + "\n").encode())
    await writer.drain()
    responses = [json.loads(await reader.readline()) for _ in lines]
    writer.close()
    await writer.wait_closed()
    return responses


class TestTCPServer:
    def test_pipelined_requests_match_solo_serving(self):
        requests = [
            BitsRequest(n_bits=12 + index, divider=8, seed=71_000 + index)
            for index in range(6)
        ]

        async def scenario():
            config = ServiceConfig(max_batch=8, max_wait_ms=40.0)
            async with TRNGService(config) as service:
                server = TRNGServer(service, port=0)
                await server.start()
                try:
                    responses = await _roundtrip(
                        server.host,
                        server.port,
                        [
                            {
                                "id": index,
                                "kind": "bits",
                                "n_bits": request.n_bits,
                                "divider": request.divider,
                                "seed": request.seed,
                            }
                            for index, request in enumerate(requests)
                        ],
                    )
                finally:
                    await server.stop()
                return responses

        responses = asyncio.run(scenario())
        by_id = {response["id"]: response for response in responses}
        for index, request in enumerate(requests):
            response = by_id[index]
            assert response["ok"], response
            served = string_to_bits(response["result"]["bits"])
            solo = run_bits_batch([request])[0].bits
            assert np.array_equal(served, solo)

    def test_stats_ping_and_errors_on_one_connection(self):
        async def scenario():
            config = ServiceConfig(max_batch=4, max_wait_ms=5.0)
            async with TRNGService(config) as service:
                server = TRNGServer(service, port=0)
                await server.start()
                try:
                    responses = await _roundtrip(
                        server.host,
                        server.port,
                        [
                            {"id": 1, "kind": "ping"},
                            {"id": 2, "kind": "bits", "n_bits": 4,
                             "divider": 8, "seed": 1},
                            {"id": 3, "kind": "stats"},
                            {"id": 4, "kind": "nonsense"},
                        ],
                    )
                finally:
                    await server.stop()
                return responses

        responses = {r["id"]: r for r in asyncio.run(scenario())}
        assert responses[1]["result"]["pong"] is True
        assert responses[2]["ok"]
        assert responses[3]["result"]["submitted"] >= 1
        assert not responses[4]["ok"]
        assert "unknown request kind" in responses[4]["error"]


    def test_oversized_line_gets_an_error_response_not_a_dead_socket(self):
        async def scenario():
            config = ServiceConfig(max_batch=2, max_wait_ms=5.0)
            async with TRNGService(config) as service:
                server = TRNGServer(service, port=0)
                await server.start()
                try:
                    reader, writer = await asyncio.open_connection(
                        server.host, server.port
                    )
                    from repro.serving.server import MAX_LINE_BYTES

                    writer.write(b"x" * (MAX_LINE_BYTES + 1024) + b"\n")
                    await writer.drain()
                    response = json.loads(await reader.readline())
                    writer.close()
                    await writer.wait_closed()
                finally:
                    await server.stop()
                return response

        response = asyncio.run(scenario())
        assert response["ok"] is False
        assert "exceeds" in response["error"]


class TestSelfTest:
    def test_self_test_passes(self):
        summary = asyncio.run(
            run_self_test(n_clients=12, n_bits=16, max_wait_ms=80.0)
        )
        assert summary["solo_equivalence"] == "bitwise"
        assert summary["stats"]["max_batch_size"] > 1
        assert summary["stats"]["completed"] == 12
