"""Priority/deadline-aware coalescing: fast-fail, windows, leader order."""

from __future__ import annotations

import asyncio

import pytest

from repro.obs import MetricsRegistry, render_prometheus
from repro.serving import (
    BitsRequest,
    Coalescer,
    DeadlineExceeded,
    RequestQueue,
    ServiceConfig,
    Sigma2NRequest,
    TRNGService,
)


def run(coroutine):
    return asyncio.run(coroutine)


def _request(seed: int, divider: int = 8, **kwargs) -> BitsRequest:
    return BitsRequest(n_bits=4, divider=divider, seed=seed, **kwargs)


class TestSchedulingFields:
    def test_priority_and_deadline_are_validated(self):
        request = _request(1, priority="interactive", deadline_ms=5)
        assert request.priority == "interactive"
        assert request.deadline_ms == 5.0
        with pytest.raises(ValueError, match="priority"):
            _request(1, priority="urgent")
        with pytest.raises(ValueError, match="deadline_ms"):
            _request(1, deadline_ms=0)

    def test_scheduling_never_changes_the_group_key(self):
        plain = _request(1)
        scheduled = _request(2, priority="batch", deadline_ms=50)
        assert plain.group_key() == scheduled.group_key()


class TestDeadlineFastFail:
    def test_expired_request_fails_without_an_engine_row(self):
        async def scenario():
            queue = RequestQueue(max_pending=8)
            coalescer = Coalescer(max_batch=8, max_wait_ms=0.0)
            doomed = await queue.submit(_request(1, deadline_ms=0.01))
            await asyncio.sleep(0.005)  # let the 10 us budget lapse
            survivor = await queue.submit(_request(2))
            batch = await coalescer.next_batch(queue)
            assert [p.request.seed for p in batch] == [2]
            with pytest.raises(DeadlineExceeded, match="no engine work"):
                await doomed
            return survivor

        run(scenario())

    def test_service_counts_expiries_and_skips_engine_work(self):
        async def scenario():
            # Serial service: a slow sigma2n occupies the engine while the
            # deadline request waits in the queue past its budget.
            config = ServiceConfig(max_batch=1, max_wait_ms=0.0)
            async with TRNGService(config) as service:
                slow = await service.submit(Sigma2NRequest(n_periods=512, seed=3))
                doomed = await service.submit(_request(4, deadline_ms=0.01))
                await slow
                with pytest.raises(DeadlineExceeded):
                    await doomed
                stats = service.stats.snapshot()
            assert stats["deadline_expired"] == 1
            assert stats["completed"] == 1
            # The expired request never became an engine batch.
            assert stats["batches"] == 1

        run(scenario())

    def test_live_deadline_caps_the_coalescing_window(self):
        async def scenario():
            queue = RequestQueue(max_pending=8)
            # A 10 s window would stall the test; the 20 ms deadline must
            # cap it so the batch dispatches (with the request live) fast.
            coalescer = Coalescer(max_batch=8, max_wait_ms=10_000.0)
            await queue.submit(_request(1, deadline_ms=20.0))
            batch = await asyncio.wait_for(
                coalescer.next_batch(queue), timeout=2.0
            )
            assert [p.request.seed for p in batch] == [1]

        run(scenario())


class TestPriorityScheduling:
    def test_interactive_leads_over_earlier_batch_arrival(self):
        async def scenario():
            queue = RequestQueue(max_pending=8)
            coalescer = Coalescer(max_batch=8, max_wait_ms=0.0)
            # Different dividers -> incompatible groups -> two batches.
            await queue.submit(_request(1, divider=8, priority="batch"))
            await queue.submit(_request(2, divider=16, priority="interactive"))
            first = await coalescer.next_batch(queue)
            second = await coalescer.next_batch(queue)
            assert [p.request.seed for p in first] == [2]
            assert [p.request.seed for p in second] == [1]

        run(scenario())

    def test_fifo_within_a_priority_class(self):
        async def scenario():
            queue = RequestQueue(max_pending=8)
            coalescer = Coalescer(max_batch=1, max_wait_ms=0.0)
            await queue.submit(_request(1, divider=8))
            await queue.submit(_request(2, divider=16))
            first = await coalescer.next_batch(queue)
            second = await coalescer.next_batch(queue)
            assert [p.request.seed for p in first] == [1]
            assert [p.request.seed for p in second] == [2]

        run(scenario())

    def test_class_wait_overrides_are_validated(self):
        with pytest.raises(ValueError, match="unknown priority"):
            Coalescer(class_wait_ms={"realtime": 1.0})
        with pytest.raises(ValueError, match=">= 0"):
            Coalescer(class_wait_ms={"batch": -1.0})


class TestImmediateDispatchWindow:
    def test_max_wait_zero_dispatches_without_waiting(self):
        async def scenario():
            # Regression: max_wait_ms=0 must mean "dispatch what has already
            # arrived, immediately" — not a zero-timeout busy loop and not a
            # stall.  Everything already queued still coalesces.
            queue = RequestQueue(max_pending=8)
            registry = MetricsRegistry("test")
            coalescer = Coalescer(max_batch=8, max_wait_ms=0.0, metrics=registry)
            for seed in (1, 2, 3):
                await queue.submit(_request(seed))
            batch = await asyncio.wait_for(
                coalescer.next_batch(queue), timeout=1.0
            )
            assert sorted(p.request.seed for p in batch) == [1, 2, 3]
            histogram = registry.get("serving_coalesce_wait_seconds")
            snapshot = histogram.snapshot()
            assert snapshot["count"] == 1
            assert snapshot["sum"] < 0.5  # no realized window

        run(scenario())


class TestCoalesceWaitObservability:
    def test_wait_histogram_reaches_stats_and_prometheus(self):
        async def scenario():
            config = ServiceConfig(max_batch=4, max_wait_ms=1.0)
            async with TRNGService(config) as service:
                await (await service.submit(_request(1)))
                stats = service.stats.snapshot()
                text = render_prometheus(service.registry)
            assert stats["coalesce_wait_seconds"]["count"] >= 1
            assert "serving_coalesce_wait_seconds" in text
            assert "serve_deadline_expired_total 0" in text

        run(scenario())
