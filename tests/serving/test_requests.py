"""Serving request semantics: seed closure, group keys, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.batch import spawn_generators
from repro.serving import BitsRequest, Sigma2NRequest


class TestSeedClosure:
    def test_unseeded_request_pins_fresh_entropy(self):
        request = BitsRequest(n_bits=8)
        assert isinstance(request.seed, int)

    def test_two_unseeded_requests_get_distinct_seeds(self):
        assert BitsRequest(n_bits=8).seed != BitsRequest(n_bits=8).seed

    def test_explicit_seed_is_kept(self):
        assert BitsRequest(n_bits=8, seed=42).seed == 42
        assert Sigma2NRequest(n_periods=64, seed=7).seed == 7

    def test_generator_is_the_engine_spawn_tree_root(self):
        request = BitsRequest(n_bits=8, seed=99)
        expected = spawn_generators(99, 1)[0].standard_normal(16)
        actual = request.generator().standard_normal(16)
        assert np.array_equal(actual, expected)


class TestGroupKeys:
    def test_same_configuration_same_key(self):
        one = BitsRequest(n_bits=8, divider=32, seed=1)
        two = BitsRequest(n_bits=800, divider=32, seed=2)
        # n_bits and seed are per-row: they must not split the group.
        assert one.group_key() == two.group_key()

    @pytest.mark.parametrize(
        "field, value",
        [
            ("divider", 64),
            ("f0_hz", 123e6),
            ("b_thermal_hz", 0.5),
            ("b_flicker_hz2", 1.0),
            ("frequency_mismatch", 2e-3),
        ],
    )
    def test_configuration_fields_split_bit_groups(self, field, value):
        base = BitsRequest(n_bits=8, divider=32, seed=1)
        other = BitsRequest(n_bits=8, seed=1, **{"divider": 32, field: value})
        assert base.group_key() != other.group_key()

    def test_sigma2n_noise_parameters_are_per_row(self):
        one = Sigma2NRequest(n_periods=4096, seed=1, b_thermal_hz=100.0)
        two = Sigma2NRequest(n_periods=4096, seed=2, b_thermal_hz=500.0)
        assert one.group_key() == two.group_key()

    @pytest.mark.parametrize(
        "field, value",
        [
            ("n_periods", 8192),
            ("n_sweep", (1, 2, 4)),
            ("overlapping", False),
            ("min_realizations", 4),
        ],
    )
    def test_sweep_parameters_split_sigma2n_groups(self, field, value):
        base = Sigma2NRequest(n_periods=4096, seed=1)
        other = Sigma2NRequest(
            **{"n_periods": 4096, "seed": 1, field: value}
        )
        assert base.group_key() != other.group_key()

    def test_bit_and_sigma2n_requests_never_share_a_group(self):
        bits = BitsRequest(n_bits=8, seed=1)
        sigma = Sigma2NRequest(n_periods=4096, seed=1)
        assert bits.group_key() != sigma.group_key()


class TestValidation:
    @pytest.mark.parametrize("n_bits", [0, -1])
    def test_bits_request_rejects_bad_n_bits(self, n_bits):
        with pytest.raises(ValueError):
            BitsRequest(n_bits=n_bits)

    def test_bits_request_rejects_bad_divider(self):
        with pytest.raises(ValueError):
            BitsRequest(n_bits=8, divider=0)

    def test_bits_request_validates_configuration_eagerly(self):
        with pytest.raises(ValueError):
            BitsRequest(n_bits=8, frequency_mismatch=0.5)

    @pytest.mark.parametrize("n_periods", [0, -5])
    def test_sigma2n_request_rejects_bad_n_periods(self, n_periods):
        with pytest.raises(ValueError):
            Sigma2NRequest(n_periods=n_periods)

    def test_sigma2n_request_rejects_bad_sweep(self):
        with pytest.raises(ValueError):
            Sigma2NRequest(n_periods=4096, n_sweep=(0, 2))

    def test_sigma2n_request_normalizes_sweep_to_int_tuple(self):
        request = Sigma2NRequest(n_periods=4096, n_sweep=[1.0, 2.0, 4.0])
        assert request.n_sweep == (1, 2, 4)
