"""Campaign result-table tests: array-form results, lazy objects, formatting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.theory import sigma2_n_closed_form
from repro.engine.batch import BatchedOscillatorEnsemble
from repro.engine.campaign import BatchedCampaignResult, batched_sigma2_n_campaign
from repro.paper import PAPER_F0_HZ, paper_phase_noise_psd
from repro.phase.psd import PhaseNoisePSD

F0 = PAPER_F0_HZ


@pytest.fixture(scope="module")
def campaign() -> BatchedCampaignResult:
    ensemble = BatchedOscillatorEnsemble(
        F0, paper_phase_noise_psd(), batch_size=6, seed=71
    )
    return batched_sigma2_n_campaign(ensemble, 32_768)


class TestResultsTable:
    def test_table_columns_and_shapes(self, campaign):
        table = campaign.table()
        for column in (
            "instance",
            "f0_hz",
            "b_thermal_hz",
            "b_flicker_hz2",
            "thermal_jitter_std_s",
            "thermal_jitter_ratio",
            "r_squared",
            "n_points",
        ):
            assert table[column].shape == (6,)
        np.testing.assert_array_equal(table["instance"], np.arange(6))
        assert np.all(table["b_thermal_hz"] > 0.0)

    def test_fitted_coefficients_recover_ground_truth(self, campaign):
        psd = paper_phase_noise_psd()
        table = campaign.table()
        # Median over instances beats any single noisy record.
        assert np.median(table["b_thermal_hz"]) == pytest.approx(
            psd.b_thermal_hz, rel=0.25
        )

    def test_lazy_objects_consistent_with_table(self, campaign):
        table = campaign.table()
        fits = campaign.fits
        curves = campaign.curves
        assert len(fits) == len(curves) == 6
        for row in range(6):
            assert fits[row].b_thermal_hz == table["b_thermal_hz"][row]
            assert fits[row].n_points == curves[row].n_values.size

    def test_format_table_renders(self, campaign):
        text = campaign.format_table(max_rows=3)
        assert "b_thermal_hz" in text
        assert "more rows" in text

    def test_format_table_truncation_is_explicit(self, campaign):
        """Regression: hidden rows are announced, never silently dropped."""
        text = campaign.format_table(max_rows=4)
        assert text.splitlines()[-1] == "... (+2 more rows)"
        # Every row shown: no footer at all.
        full = campaign.format_table(max_rows=6)
        assert "more rows" not in full
        assert len(full.splitlines()) == 7  # header + 6 rows
        # Degenerate budget: nothing but header and the full count.
        empty = campaign.format_table(max_rows=0)
        assert empty.splitlines()[-1] == "... (+6 more rows)"

    def test_bit_format_table_truncation_is_explicit(self):
        from repro.engine.campaign import BitCampaignResult

        result = BitCampaignResult(
            dividers=np.array([2, 4]),
            bias=np.zeros((2, 3)),
            shannon_entropy=np.ones((2, 3)),
            min_entropy=np.ones((2, 3)),
            markov_entropy=np.ones((2, 3)),
            procedure_a_passed=np.ones((2, 3), dtype=bool),
            procedure_b_passed=None,
            n_bits=128,
        )
        text = result.format_table(max_rows=4)
        assert text.splitlines()[-1] == "... (+2 more rows)"
        assert "more rows" not in result.format_table(max_rows=6)

    def test_fit_false_blocks_table_and_fits(self):
        ensemble = BatchedOscillatorEnsemble(
            F0, PhaseNoisePSD(276.0, 0.0), batch_size=2, seed=3
        )
        result = batched_sigma2_n_campaign(ensemble, 4096, fit=False)
        with pytest.raises(ValueError, match="fit=False"):
            result.table()
        with pytest.raises(ValueError, match="fit=False"):
            result.fits
        assert len(result.curves) == 2

    def test_batch_size_and_len(self, campaign):
        assert campaign.batch_size == len(campaign) == 6


class TestCampaignStatistics:
    @pytest.mark.slow
    def test_thermal_only_campaign_matches_closed_form(self):
        psd = PhaseNoisePSD(b_thermal_hz=276.04, b_flicker_hz2=0.0)
        ensemble = BatchedOscillatorEnsemble(F0, psd, batch_size=8, seed=15)
        result = batched_sigma2_n_campaign(ensemble, 65_536)
        for column, n in enumerate(result.n_values):
            expected = sigma2_n_closed_form(psd, F0, int(n))
            median = float(np.median(result.sigma2_s2[:, column]))
            assert median == pytest.approx(expected, rel=0.1)

    @pytest.mark.slow
    def test_heterogeneous_campaign_separates_instances(self):
        """A corner-sweep ensemble yields clearly distinct fitted b_th."""
        b_thermal = np.array([50.0, 276.0, 1500.0])
        ensemble = BatchedOscillatorEnsemble.from_phase_noise(
            F0, b_thermal, 0.0, seed=19
        )
        result = batched_sigma2_n_campaign(ensemble, 65_536)
        fitted = result.table()["b_thermal_hz"]
        np.testing.assert_allclose(fitted, b_thermal, rtol=0.2)
        assert fitted[0] < fitted[1] < fitted[2]
