"""Statistical validation: the philox contract against the spawn reference.

The two stream contracts are *different random sequences* by design, so the
counter-based tier cannot be checked bitwise against the spawn tree.  What
must hold instead is statistical indistinguishability: the same campaign
design point run under both contracts has to produce the same physics — the
same entropy-vs-divider landscape from the entropy-campaign machinery and
the same AIS31 verdicts.  A defect in the Philox key derivation (correlated
rows, reused blocks, truncated entropy) would show up here as a bias or
entropy gap between the tiers.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.engine.campaign import batched_bit_campaign

CONTRACTS = ("spawn", "philox")


def _campaign(configuration, contract, **overrides):
    parameters = dict(
        dividers=(10, 40, 160),
        batch_size=8,
        n_bits=2_000,
        seed=20140324,
        rng_contract=contract,
    )
    parameters.update(overrides)
    dividers = parameters.pop("dividers")
    return batched_bit_campaign(configuration, list(dividers), **parameters)


class TestEntropyCampaignAgreement:
    """Both contracts land on the same entropy-vs-accumulation landscape."""

    @pytest.fixture(scope="class")
    def results(self, thermal_heavy_configuration):
        return {
            contract: _campaign(thermal_heavy_configuration, contract)
            for contract in CONTRACTS
        }

    def test_contracts_are_distinct_sequences(self, results):
        assert not np.array_equal(
            results["spawn"].bias, results["philox"].bias
        )

    def test_mean_bias_agrees(self, results):
        # Bias is near zero at every divider; the across-instance means of
        # two same-design campaigns agree within the sampling noise of
        # batch x n_bits Bernoulli draws (sigma ~ 1/(2*sqrt(B*n)) ~ 0.004).
        spawn = results["spawn"].bias.mean(axis=1)
        philox = results["philox"].bias.mean(axis=1)
        np.testing.assert_allclose(spawn, philox, atol=0.02)

    @pytest.mark.parametrize(
        "attribute", ("shannon_entropy", "min_entropy", "markov_entropy")
    )
    def test_mean_entropy_estimates_agree(self, results, attribute):
        spawn = getattr(results["spawn"], attribute).mean(axis=1)
        philox = getattr(results["philox"], attribute).mean(axis=1)
        np.testing.assert_allclose(spawn, philox, atol=0.05)

    def test_entropy_increases_with_divider_under_philox(self, results):
        """The paper's design-guidance trend survives the stream swap."""
        for attribute in ("shannon_entropy", "min_entropy"):
            means = getattr(results["philox"], attribute).mean(axis=1)
            assert means[0] < means[-1]
            assert np.all(np.diff(means) > -0.01)


class TestAIS31Agreement:
    """Same design point, same AIS31 verdicts, on both contracts.

    ``T0`` needs >3 million bits per row and is exercised by the dedicated
    AIS31 suite on synthetic streams; here the campaign-level battery runs
    at the same thermal-heavy design point the spawn-tier slow tests use.
    """

    @pytest.mark.slow
    def test_procedure_a_passes_on_both_contracts(
        self, thermal_heavy_configuration
    ):
        for contract in CONTRACTS:
            result = _campaign(
                thermal_heavy_configuration,
                contract,
                dividers=(250,),
                batch_size=2,
                n_bits=21_000,
                run_procedure_a=True,
            )
            assert result.procedure_a_passed.shape == (1, 2)
            assert result.procedure_a_passed.all(), contract

    @pytest.mark.slow
    def test_procedure_b_passes_on_both_contracts(
        self, thermal_heavy_configuration
    ):
        for contract in CONTRACTS:
            result = _campaign(
                thermal_heavy_configuration,
                contract,
                dividers=(250,),
                batch_size=2,
                n_bits=101_000,
                run_procedure_b=True,
            )
            assert result.procedure_b_passed.shape == (1, 2)
            assert result.procedure_b_passed.all(), contract

    def test_low_divider_fails_identically(self, thermal_heavy_configuration):
        """A known-bad design point is judged bad under either contract."""
        configuration = replace(thermal_heavy_configuration, divider=2)
        for contract in CONTRACTS:
            result = _campaign(
                configuration,
                contract,
                dividers=(2,),
                batch_size=2,
                n_bits=21_000,
                run_procedure_a=True,
            )
            assert not result.procedure_a_passed.any(), contract
