"""Fabric failure-path tests: death detection, reassignment, zero recompute.

Every scenario asserts two things: the run *survives* (or fails with a clear
:class:`FabricError` when it cannot), and the merged output stays
**bit-for-bit identical** to the single-host run — a worker death must never
change a single bit of the result.
"""

from __future__ import annotations

import json
import socket
import threading

import numpy as np
import pytest

from repro.engine.distributed import (
    FabricCoordinator,
    FabricError,
    Sigma2NCampaignSpec,
    run_campaign,
)
from repro.engine.distributed.fabric.telemetry import (
    ASSIGNED,
    COMPLETED,
    WORKER_DEAD,
)


class FakeWorker(threading.Thread):
    """A TCP endpoint that misbehaves in a configurable way.

    ``mode="silent"`` accepts and reads but never replies (a wedged worker —
    exercises the heartbeat timeout); ``mode="slam"`` accepts and closes
    immediately (a worker dying between accept and first result).
    """

    def __init__(self, mode: str) -> None:
        super().__init__(daemon=True)
        self.mode = mode
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self.start()

    @property
    def endpoint(self) -> str:
        return f"127.0.0.1:{self.port}"

    def run(self) -> None:
        try:
            while True:
                client, _ = self._listener.accept()
                if self.mode == "slam":
                    client.close()
                    continue
                try:
                    while client.recv(65536):
                        pass  # silent: consume traffic, never answer
                except OSError:
                    pass
                finally:
                    client.close()
        except OSError:
            return  # listener closed

    def close(self) -> None:
        self._listener.close()


@pytest.fixture()
def spec():
    return Sigma2NCampaignSpec(batch_size=8, n_periods=8192, seed=21)


@pytest.fixture()
def reference(spec):
    return run_campaign(spec, n_shards=8)


def _assert_bitwise(result, reference):
    np.testing.assert_array_equal(result.sigma2_s2, reference.sigma2_s2)
    for name, column in reference.table().items():
        np.testing.assert_array_equal(result.table()[name], column)


def test_killed_worker_shards_are_reassigned(spec, reference):
    """SIGKILL one of two workers mid-campaign; the run must still merge
    bit-identically, with at least one reassignment recorded."""
    killed = []
    trigger = threading.Lock()

    coordinator = FabricCoordinator(
        spawn=2, heartbeat_interval=0.2, heartbeat_timeout=5.0
    )

    def assassin(event) -> None:
        if event.kind != COMPLETED:
            return
        # Locked: two workers completing simultaneously must not each kill
        # "the other" — exactly one worker dies in this scenario.
        with trigger:
            if killed:
                return
            for link in coordinator.workers:
                if link.name != event.worker and link.process is not None:
                    link.process.kill()
                    killed.append(link.name)
                    return

    coordinator.on_event = assassin
    with coordinator:
        result = run_campaign(spec, executor=coordinator, n_shards=8)
        summary = coordinator.telemetry.summary()
    assert killed, "the fault injector never fired"
    assert summary["reassignments"] >= 1
    assert killed[0] in summary["worker_failures"]
    _assert_bitwise(result, reference)


def test_heartbeat_timeout_retires_silent_worker(spec, reference):
    """A wedged (accepting, never answering) worker is declared dead after
    the heartbeat timeout and its shard completes elsewhere."""
    fake = FakeWorker("silent")
    try:
        coordinator = FabricCoordinator(
            remote=[fake.endpoint],
            spawn=1,
            heartbeat_interval=0.2,
            heartbeat_timeout=1.0,
        )
        with coordinator:
            result = run_campaign(spec, executor=coordinator, n_shards=4)
            summary = coordinator.telemetry.summary()
        assert summary["reassignments"] >= 1
        assert any(
            "heartbeat timeout" in (event.error or "")
            for event in coordinator.telemetry.of_kind(WORKER_DEAD)
        )
        _assert_bitwise(result, reference)
    finally:
        fake.close()


def test_all_workers_dead_raises_fabric_error(spec):
    fake = FakeWorker("silent")
    try:
        coordinator = FabricCoordinator(
            remote=[fake.endpoint],
            heartbeat_interval=0.2,
            heartbeat_timeout=1.0,
            max_attempts=1,
        )
        with coordinator:
            with pytest.raises(FabricError):
                run_campaign(spec, executor=coordinator, n_shards=2)
    finally:
        fake.close()


def test_worker_dying_before_first_result_is_survivable(spec, reference):
    """A worker that drops the connection right after accept (death between
    accept and first result) gets its shard reassigned."""
    fake = FakeWorker("slam")
    try:
        coordinator = FabricCoordinator(
            remote=[fake.endpoint],
            spawn=1,
            heartbeat_interval=0.2,
            heartbeat_timeout=2.0,
        )
        with coordinator:
            result = run_campaign(spec, executor=coordinator, n_shards=4)
            summary = coordinator.telemetry.summary()
        assert len(summary["worker_failures"]) >= 1
        _assert_bitwise(result, reference)
    finally:
        fake.close()


class _CrashAfter:
    """Executor wrapper simulating a coordinator crash after N results."""

    def __init__(self, inner, yield_before_crash: int) -> None:
        self.inner = inner
        self.yield_before_crash = yield_before_crash
        self.max_workers = inner.max_workers

    def run(self, function, tasks):
        for count, item in enumerate(self.inner.run(function, tasks)):
            if count >= self.yield_before_crash:
                raise RuntimeError("simulated coordinator crash")
            yield item


def test_coordinator_restart_recomputes_only_missing_shards(
    spec, reference, tmp_path
):
    """Crash the coordinator after 2 checkpointed shards; a fresh coordinator
    resuming the manifest must assign only the missing shards, and a third
    resume of the complete checkpoint must assign none (zero recompute)."""
    first = FabricCoordinator(spawn=1, heartbeat_interval=0.5)
    with first:
        with pytest.raises(RuntimeError, match="simulated coordinator crash"):
            run_campaign(
                spec,
                executor=_CrashAfter(first, 2),
                n_shards=4,
                checkpoint_dir=tmp_path,
            )
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    completed_before = set(manifest["completed"])
    assert len(completed_before) == 2

    events = []
    second = FabricCoordinator(
        spawn=1, heartbeat_interval=0.5, on_event=events.append
    )
    with second:
        result = run_campaign(
            spec,
            executor=second,
            n_shards=4,
            checkpoint_dir=tmp_path,
            resume=True,
        )
    assigned = {e.shard_index for e in events if e.kind == ASSIGNED}
    assert assigned.isdisjoint(completed_before)
    assert len(assigned) == 4 - len(completed_before)
    _assert_bitwise(result, reference)

    # Fully-checkpointed resume: nothing is assigned, nothing is spawned.
    events.clear()
    third = FabricCoordinator(spawn=1, on_event=events.append)
    cached = run_campaign(
        spec, executor=third, n_shards=4, checkpoint_dir=tmp_path, resume=True
    )
    assert events == []
    assert third.workers == []  # empty task list never even connected
    _assert_bitwise(cached, reference)
