"""Property-based equivalence: batched rows reproduce the scalar path.

The engine's contract (ISSUE: batched row ``i`` must reproduce the scalar
``RingOscillator`` / ``relative_jitter_campaign`` outputs bit-for-bit, or
within 1e-12, for a shared seed) is exercised here for thermal-only,
flicker-only and mixed PSDs, across batch sizes and record lengths.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fitting import fit_sigma2_n_curve
from repro.core.sigma_n import accumulated_variance_curve, accumulated_variance_curves
from repro.engine.batch import (
    BatchedJitterSynthesizer,
    BatchedOscillatorEnsemble,
    spawn_generators,
)
from repro.engine.campaign import (
    batched_relative_jitter_campaign,
    batched_sigma2_n_campaign,
    fit_sigma2_n_curves,
)
from repro.measurement.capture import relative_jitter_campaign, relative_jitter_record
from repro.oscillator.ring import RingOscillator
from repro.paper import PAPER_F0_HZ, paper_phase_noise_psd
from repro.phase.psd import PhaseNoisePSD
from repro.phase.synthesis import PeriodJitterSynthesizer

F0 = PAPER_F0_HZ

PSD_CASES = {
    "thermal-only": PhaseNoisePSD(b_thermal_hz=276.04, b_flicker_hz2=0.0),
    "flicker-only": PhaseNoisePSD(b_thermal_hz=0.0, b_flicker_hz2=5.42),
    "mixed": paper_phase_noise_psd(),
}


@pytest.mark.parametrize("psd", PSD_CASES.values(), ids=PSD_CASES.keys())
@given(seed=st.integers(0, 2**32 - 1), batch=st.integers(1, 5))
@settings(max_examples=12, deadline=None)
def test_batched_records_match_scalar_bitwise(psd, seed, batch):
    """Row i of every synthesized record equals the scalar oscillator's."""
    n_periods = 512
    ensemble = BatchedOscillatorEnsemble(F0, psd, batch_size=batch, seed=seed)
    decomposition = ensemble.decompose(n_periods)
    children = spawn_generators(seed, batch)
    for row in range(batch):
        scalar = RingOscillator(F0, psd, rng=children[row]).decompose(n_periods)
        np.testing.assert_array_equal(
            decomposition.periods_s[row], scalar.periods_s
        )
        np.testing.assert_array_equal(
            decomposition.thermal_jitter_s[row], scalar.thermal_jitter_s
        )
        np.testing.assert_array_equal(
            decomposition.flicker_jitter_s[row], scalar.flicker_jitter_s
        )


@pytest.mark.parametrize("psd", PSD_CASES.values(), ids=PSD_CASES.keys())
def test_jitter_and_edge_times_match_scalar(psd):
    """jitter() and edge_times() agree with the scalar view row by row."""
    batch, n_periods, seed = 3, 300, 77
    ensemble = BatchedOscillatorEnsemble(F0, psd, batch_size=batch, seed=seed)
    jitter = ensemble.jitter(n_periods)
    edges = ensemble.edge_times(n_periods, start_time_s=1e-6)
    children = spawn_generators(seed, batch)
    for row in range(batch):
        oscillator = RingOscillator(F0, psd, rng=children[row])
        np.testing.assert_array_equal(jitter[row], oscillator.jitter(n_periods))
        np.testing.assert_array_equal(
            edges[row], oscillator.edge_times(n_periods, start_time_s=1e-6)
        )


def test_scalar_synthesizer_is_thin_view_over_engine():
    """PeriodJitterSynthesizer and a B=1 batched synthesizer share the stream."""
    psd = PSD_CASES["mixed"]
    rng_a = np.random.default_rng(5)
    rng_b = np.random.default_rng(5)
    scalar = PeriodJitterSynthesizer(F0, psd, rng=rng_a)
    batched = BatchedJitterSynthesizer(F0, psd, rngs=[rng_b])
    for n_periods in (100, 37, 0, 256):
        np.testing.assert_array_equal(
            scalar.periods(n_periods), batched.periods(n_periods)[0]
        )


def test_ensemble_row_view_shares_stream():
    """ensemble.row(i) is a scalar oscillator consuming the row's stream."""
    psd = PSD_CASES["mixed"]
    ensemble = BatchedOscillatorEnsemble(F0, psd, batch_size=3, seed=9)
    reference = BatchedOscillatorEnsemble(F0, psd, batch_size=3, seed=9)
    expected = reference.jitter(64)
    row_view = ensemble.row(1)
    assert isinstance(row_view, RingOscillator)
    # Row 1's stream is consumed by the view; other rows are untouched.
    np.testing.assert_array_equal(row_view.jitter(64), expected[1])


@pytest.mark.parametrize("psd", PSD_CASES.values(), ids=PSD_CASES.keys())
@pytest.mark.parametrize("exact", [True, False])
def test_batched_campaign_matches_scalar_curves_and_fits(psd, exact):
    """Campaign row i reproduces accumulated_variance_curve + fit (<= 1e-12)."""
    batch, n_periods, seed = 4, 2048, 123
    ensemble = BatchedOscillatorEnsemble(F0, psd, batch_size=batch, seed=seed)
    result = batched_sigma2_n_campaign(ensemble, n_periods, exact=exact)
    children = spawn_generators(seed, batch)
    for row in range(batch):
        oscillator = RingOscillator(F0, psd, rng=children[row])
        curve = accumulated_variance_curve(oscillator.jitter(n_periods), F0)
        np.testing.assert_array_equal(result.curves[row].n_values, curve.n_values)
        np.testing.assert_array_equal(
            result.curves[row].realization_counts, curve.realization_counts
        )
        if exact:
            np.testing.assert_array_equal(
                result.curves[row].sigma2_values_s2, curve.sigma2_values_s2
            )
        else:
            np.testing.assert_allclose(
                result.curves[row].sigma2_values_s2,
                curve.sigma2_values_s2,
                rtol=1e-12,
            )
        scalar_fit = fit_sigma2_n_curve(curve)
        batched_fit = result.fits[row]
        np.testing.assert_allclose(
            [batched_fit.b_thermal_hz, batched_fit.b_flicker_hz2],
            [scalar_fit.b_thermal_hz, scalar_fit.b_flicker_hz2],
            rtol=1e-9,
            atol=1e-20,
        )


def test_batched_relative_campaign_matches_scalar_pairwise():
    """Relative (pair) campaign row i == scalar relative_jitter_campaign."""
    psd = PSD_CASES["mixed"]
    batch, n_periods, seed = 3, 4096, 2014
    mismatch = 1e-3
    f0_fast = F0 * (1.0 + mismatch / 2.0)
    f0_slow = F0 * (1.0 - mismatch / 2.0)
    children = spawn_generators(seed, 2 * batch)
    ensemble_1 = BatchedOscillatorEnsemble(
        f0_fast, psd, batch_size=batch, rngs=children[:batch]
    )
    ensemble_2 = BatchedOscillatorEnsemble(
        f0_slow, psd, batch_size=batch, rngs=children[batch:]
    )
    result = batched_relative_jitter_campaign(
        ensemble_1, ensemble_2, n_periods, exact=True
    )
    children = spawn_generators(seed, 2 * batch)
    for row in range(batch):
        oscillator_1 = RingOscillator(f0_fast, psd, rng=children[row])
        oscillator_2 = RingOscillator(f0_slow, psd, rng=children[batch + row])
        curve = relative_jitter_campaign(oscillator_1, oscillator_2, n_periods)
        np.testing.assert_array_equal(
            result.curves[row].sigma2_values_s2, curve.sigma2_values_s2
        )
        np.testing.assert_array_equal(result.curves[row].n_values, curve.n_values)


def test_relative_record_matches_scalar():
    psd = PSD_CASES["thermal-only"]
    children = spawn_generators(3, 2)
    ensemble_1 = BatchedOscillatorEnsemble(F0, psd, batch_size=1, rngs=[children[0]])
    ensemble_2 = BatchedOscillatorEnsemble(F0, psd, batch_size=1, rngs=[children[1]])
    periods_1 = ensemble_1.periods(256)
    periods_2 = ensemble_2.periods(256)
    batched_record = periods_1 - periods_2 + ensemble_1.nominal_period_s[:, None]
    children = spawn_generators(3, 2)
    scalar_record = relative_jitter_record(
        RingOscillator(F0, psd, rng=children[0]),
        RingOscillator(F0, psd, rng=children[1]),
        256,
    )
    np.testing.assert_array_equal(batched_record[0], scalar_record)


def test_accumulated_variance_curves_rowwise_bitwise(rng):
    """The vectorized core estimator equals the scalar one, row by row."""
    records = rng.normal(0.0, 1e-12, size=(6, 3000))
    curves = accumulated_variance_curves(records, F0)
    for row in range(6):
        scalar_curve = accumulated_variance_curve(records[row], F0)
        np.testing.assert_array_equal(
            curves[row].sigma2_values_s2, scalar_curve.sigma2_values_s2
        )
        np.testing.assert_array_equal(curves[row].n_values, scalar_curve.n_values)


def test_fit_sigma2_n_curves_heterogeneous_sweep_fallback(rng):
    """Curves with different sweeps fall back to per-curve scalar fits."""
    records = rng.normal(0.0, 1e-12, size=(2, 2000))
    curve_a = accumulated_variance_curve(records[0], F0, n_sweep=[1, 2, 4, 8])
    curve_b = accumulated_variance_curve(records[1], F0, n_sweep=[1, 3, 9, 27])
    fits = fit_sigma2_n_curves([curve_a, curve_b])
    for fit, curve in zip(fits, (curve_a, curve_b)):
        scalar_fit = fit_sigma2_n_curve(curve)
        assert fit.b_thermal_hz == pytest.approx(scalar_fit.b_thermal_hz, rel=1e-9)


def test_heterogeneous_ensemble_parameters():
    """Per-instance f0 and PSDs are honoured (corner-sweep style ensemble)."""
    f0_values = np.array([50e6, 100e6, 200e6])
    b_thermal = np.array([100.0, 276.0, 500.0])
    b_flicker = np.array([0.0, 5.0, 20.0])
    ensemble = BatchedOscillatorEnsemble.from_phase_noise(
        f0_values, b_thermal, b_flicker, seed=4
    )
    assert ensemble.batch_size == 3
    np.testing.assert_allclose(ensemble.f0_hz, f0_values)
    children = spawn_generators(4, 3)
    records = ensemble.jitter(400)
    for row in range(3):
        oscillator = RingOscillator.from_phase_noise(
            f0_values[row], b_thermal[row], b_flicker[row], rng=children[row]
        )
        np.testing.assert_array_equal(records[row], oscillator.jitter(400))


def test_scalar_synthesizer_attributes_stay_live():
    """Reassigning rng/psd on the scalar view must affect later synthesis.

    The pre-engine implementation read these attributes on every call;
    re-seeding ``rng`` to reproduce a record is a documented workflow.
    """
    psd = PSD_CASES["mixed"]
    synthesizer = PeriodJitterSynthesizer(F0, psd, rng=np.random.default_rng(0))
    first = synthesizer.periods(32)
    synthesizer.rng = np.random.default_rng(0)
    np.testing.assert_array_equal(synthesizer.periods(32), first)
    thermal_only = PSD_CASES["thermal-only"]
    synthesizer.psd = thermal_only
    synthesizer.rng = np.random.default_rng(1)
    expected = PeriodJitterSynthesizer(
        F0, thermal_only, rng=np.random.default_rng(1)
    ).periods(32)
    np.testing.assert_array_equal(synthesizer.periods(32), expected)


def test_ar_flicker_method_matches_scalar():
    """The non-spectral fallback path is row-equivalent to the scalar class."""
    psd = PSD_CASES["mixed"]
    ensemble = BatchedOscillatorEnsemble(
        F0, psd, batch_size=2, seed=5, flicker_method="ar"
    )
    records = ensemble.jitter(128)
    children = spawn_generators(5, 2)
    for row in range(2):
        oscillator = RingOscillator(
            F0, psd, rng=children[row], flicker_method="ar"
        )
        np.testing.assert_array_equal(records[row], oscillator.jitter(128))


def test_exact_incompatible_with_chunked_campaign():
    """exact=True must not be silently ignored on the streaming path."""
    ensemble = BatchedOscillatorEnsemble(
        F0, PSD_CASES["thermal-only"], batch_size=1, seed=2
    )
    with pytest.raises(ValueError, match="exact"):
        batched_sigma2_n_campaign(
            ensemble, 100_000, chunk_periods=10_000, exact=True
        )


def test_fit_curves_with_different_record_lengths_fall_back(rng):
    """Same sweep but different counts must not share one weight row."""
    short = accumulated_variance_curve(
        rng.normal(0.0, 1e-12, size=400), F0, n_sweep=[1, 2, 4, 8]
    )
    long = accumulated_variance_curve(
        rng.normal(0.0, 1e-12, size=4000), F0, n_sweep=[1, 2, 4, 8]
    )
    fits = fit_sigma2_n_curves([short, long])
    for fit, curve in zip(fits, (short, long)):
        scalar_fit = fit_sigma2_n_curve(curve)
        assert fit.b_thermal_hz == pytest.approx(scalar_fit.b_thermal_hz, rel=1e-12)


def test_psds_iterator_accepted():
    """A generator of PSDs must survive batch-size inference."""
    psd = PSD_CASES["thermal-only"]
    synthesizer = BatchedJitterSynthesizer(F0, (psd for _ in range(3)))
    assert synthesizer.batch_size == 3


def test_ensemble_validation_errors():
    psd = PSD_CASES["mixed"]
    with pytest.raises(ValueError):
        BatchedOscillatorEnsemble(F0, psd, batch_size=0)
    with pytest.raises(ValueError):
        BatchedOscillatorEnsemble(-1.0, psd, batch_size=2)
    with pytest.raises(ValueError):
        BatchedOscillatorEnsemble(F0, [psd, psd], batch_size=3)
    with pytest.raises(ValueError):
        BatchedJitterSynthesizer(F0, psd, batch_size=2, rngs=[np.random.default_rng()])
    with pytest.raises(IndexError):
        BatchedOscillatorEnsemble(F0, psd, batch_size=2, seed=1).row(5)
    with pytest.raises(ValueError):
        BatchedOscillatorEnsemble(F0, psd, batch_size=2, seed=1).decompose(-1)
