"""Shard invariance: merged output == unsharded batched campaigns, bit for bit.

The distributed runner's contract is that sharding is *pure bookkeeping*:
for every shard count and executor, the merged tables equal the unsharded
``batched_sigma2_n_campaign`` / ``batched_bit_campaign`` output exactly —
``np.array_equal``, not approx — because each shard re-derives its rows'
RNG streams from the root ``SeedSequence`` spawn tree.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.campaign import (
    batched_bit_campaign,
    batched_sigma2_n_campaign,
)
from repro.engine.distributed import (
    BitCampaignSpec,
    MultiprocessExecutor,
    SerialExecutor,
    Sigma2NCampaignSpec,
    run_campaign,
)

SHARD_COUNTS = (1, 2, 3, 7)


@pytest.fixture(scope="module")
def sigma2n_spec() -> Sigma2NCampaignSpec:
    # Heterogeneous corners: row mix-ups would be caught immediately.
    return Sigma2NCampaignSpec(
        batch_size=10,
        n_periods=8192,
        b_thermal_hz=tuple(np.linspace(100.0, 600.0, 10)),
        b_flicker_hz2=5.42,
        seed=1203,
    )


@pytest.fixture(scope="module")
def sigma2n_reference(sigma2n_spec):
    return batched_sigma2_n_campaign(
        sigma2n_spec.ensemble(), sigma2n_spec.n_periods
    )


def assert_same_campaign(result, reference, fit: bool = True) -> None:
    np.testing.assert_array_equal(result.n_values, reference.n_values)
    np.testing.assert_array_equal(result.sigma2_s2, reference.sigma2_s2)
    np.testing.assert_array_equal(
        result.realization_counts, reference.realization_counts
    )
    np.testing.assert_array_equal(result.f0_hz, reference.f0_hz)
    if fit:
        table, expected = result.table(), reference.table()
        assert set(table) == set(expected)
        for name, values in expected.items():
            np.testing.assert_array_equal(table[name], values, err_msg=name)


class TestSigma2NShardInvariance:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_merged_equals_unsharded(
        self, sigma2n_spec, sigma2n_reference, n_shards
    ):
        result = run_campaign(sigma2n_spec, n_shards=n_shards)
        assert_same_campaign(result, sigma2n_reference)

    def test_multiprocess_executor_matches(
        self, sigma2n_spec, sigma2n_reference
    ):
        result = run_campaign(
            sigma2n_spec,
            executor=MultiprocessExecutor(max_workers=2),
            n_shards=4,
        )
        assert_same_campaign(result, sigma2n_reference)

    def test_explicit_plan_overrides_shard_count(
        self, sigma2n_spec, sigma2n_reference
    ):
        from repro.engine.distributed import plan_shards

        plan = plan_shards(sigma2n_spec.batch_size, 5)
        result = run_campaign(sigma2n_spec, plan=plan)
        assert_same_campaign(result, sigma2n_reference)
        with pytest.raises(ValueError, match="rows"):
            run_campaign(sigma2n_spec, plan=plan_shards(7, 2))

    def test_fit_false_round_trips(self, sigma2n_spec, sigma2n_reference):
        from dataclasses import replace

        spec = replace(sigma2n_spec, fit=False)
        result = run_campaign(spec, n_shards=3)
        assert_same_campaign(result, sigma2n_reference, fit=False)
        with pytest.raises(ValueError, match="fit=False"):
            result.table()


class TestStreamingShardInvariance:
    # Spec and unsharded reference are read-only across the shard-count
    # parametrization; computing the reference once saves three streaming
    # campaigns per run.
    @pytest.fixture(scope="class")
    def streaming_spec(self) -> Sigma2NCampaignSpec:
        return Sigma2NCampaignSpec(
            batch_size=8,
            n_periods=16_384,
            chunk_periods=4096,
            seed=77,
        )

    @pytest.fixture(scope="class")
    def streaming_reference(self, streaming_spec):
        return batched_sigma2_n_campaign(
            streaming_spec.ensemble(),
            streaming_spec.n_periods,
            chunk_periods=streaming_spec.chunk_periods,
        )

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_streaming_merge_equals_unsharded(
        self, streaming_spec, streaming_reference, n_shards
    ):
        result = run_campaign(streaming_spec, n_shards=n_shards)
        assert_same_campaign(result, streaming_reference)


class TestBitShardInvariance:
    @pytest.fixture(scope="class")
    def spec(self) -> BitCampaignSpec:
        return BitCampaignSpec(
            batch_size=6,
            n_bits=768,
            dividers=(4, 8, 16),
            seed=2014,
        )

    @pytest.fixture(scope="class")
    def reference(self, spec):
        return batched_bit_campaign(
            spec.configuration(),
            spec.dividers,
            spec.batch_size,
            spec.n_bits,
            seed=spec.seed,
        )

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_merged_equals_unsharded(self, spec, reference, n_shards):
        result = run_campaign(spec, n_shards=n_shards)
        np.testing.assert_array_equal(result.dividers, reference.dividers)
        assert result.n_bits == reference.n_bits
        for name in ("bias", "shannon_entropy", "min_entropy", "markov_entropy"):
            np.testing.assert_array_equal(
                getattr(result, name), getattr(reference, name), err_msg=name
            )
        summary = result.entropy_vs_divider()
        expected = reference.entropy_vs_divider()
        for name, values in expected.items():
            np.testing.assert_array_equal(summary[name], values, err_msg=name)

    def test_serial_executor_is_default(self, spec, reference):
        result = run_campaign(spec, executor=SerialExecutor(), n_shards=2)
        np.testing.assert_array_equal(result.bias, reference.bias)


class TestInstanceRange:
    def test_bit_campaign_instance_range_slices_rows(self):
        spec = BitCampaignSpec(
            batch_size=5, n_bits=256, dividers=(4,), seed=3
        )
        full = batched_bit_campaign(
            spec.configuration(), spec.dividers, 5, 256, seed=3
        )
        part = batched_bit_campaign(
            spec.configuration(),
            spec.dividers,
            5,
            256,
            seed=3,
            instance_range=(1, 4),
        )
        np.testing.assert_array_equal(part.bias, full.bias[:, 1:4])
        np.testing.assert_array_equal(
            part.min_entropy, full.min_entropy[:, 1:4]
        )

    def test_bit_campaign_instance_range_validation(self):
        spec = BitCampaignSpec(batch_size=4, n_bits=64, dividers=(4,), seed=3)
        with pytest.raises(ValueError, match="instance_range"):
            batched_bit_campaign(
                spec.configuration(),
                spec.dividers,
                4,
                64,
                seed=3,
                instance_range=(2, 6),
            )

    @pytest.mark.parametrize("seed", [None, "generator"])
    def test_instance_range_requires_stateless_seed(self, seed):
        """Regression: shard rows must belong to one re-derivable campaign."""
        import numpy as np

        spec = BitCampaignSpec(batch_size=4, n_bits=64, dividers=(4,), seed=3)
        if seed == "generator":
            seed = np.random.default_rng(3)
        with pytest.raises(ValueError, match="stateless seed"):
            batched_bit_campaign(
                spec.configuration(),
                spec.dividers,
                4,
                64,
                seed=seed,
                instance_range=(0, 2),
            )
