"""CLI tests for ``python -m repro.campaigns`` (invoked in-process)."""

from __future__ import annotations

import json

import pytest

from repro.campaigns import main


def test_sigma2n_verify_and_json(tmp_path, capsys):
    out = tmp_path / "sigma2n.json"
    arguments = ["sigma2n", "--batch", "6", "--n-periods", "4096"]
    arguments += ["--shards", "3", "--seed", "7", "--verify"]
    arguments += ["--max-rows", "2", "--json", str(out)]
    assert main(arguments) == 0
    captured = capsys.readouterr().out
    assert "bit-for-bit identical" in captured
    assert "... (+4 more rows)" in captured
    payload = json.loads(out.read_text())
    assert payload["command"] == "sigma2n"
    assert payload["verified"] is True
    assert payload["spec"]["seed"] == 7
    assert len(payload["table"]["b_thermal_hz"]) == 6
    # Omitted noise flags use the spec dataclass defaults (single source).
    from repro.engine.distributed import Sigma2NCampaignSpec

    defaults = Sigma2NCampaignSpec(batch_size=1, n_periods=1, seed=0)
    assert payload["spec"]["b_thermal_hz"] == defaults.b_thermal_hz
    assert payload["spec"]["b_flicker_hz2"] == defaults.b_flicker_hz2
    assert payload["spec"]["f0_hz"] == defaults.f0_hz


def test_sigma2n_multiprocess_workers():
    arguments = ["sigma2n", "--batch", "4", "--n-periods", "2048"]
    arguments += ["--shards", "4", "--workers", "2", "--seed", "3", "--verify"]
    assert main(arguments) == 0


def test_bits_subcommand_with_checkpoint_resume(tmp_path, capsys):
    checkpoint = tmp_path / "ck"
    out = tmp_path / "bits.json"
    arguments = ["bits", "--batch", "4", "--n-bits", "512", "--dividers", "4,8"]
    arguments += ["--shards", "2", "--seed", "5"]
    arguments += ["--checkpoint-dir", str(checkpoint), "--json", str(out)]
    assert main(arguments) == 0
    assert (checkpoint / "manifest.json").exists()
    assert main(arguments + ["--resume", "--verify"]) == 0
    captured = capsys.readouterr().out
    assert "bit-for-bit identical" in captured
    payload = json.loads(out.read_text())
    assert payload["table"]["divider"][:4] == [4, 4, 4, 4]


def test_streaming_campaign_via_cli():
    arguments = ["sigma2n", "--batch", "4", "--n-periods", "8192"]
    arguments += ["--chunk-periods", "2048", "--shards", "2", "--seed", "11"]
    arguments += ["--verify"]
    assert main(arguments) == 0


def test_no_fit_prints_curve_count(capsys):
    arguments = ["sigma2n", "--batch", "3", "--n-periods", "2048"]
    arguments += ["--seed", "2", "--no-fit"]
    assert main(arguments) == 0
    assert "fit skipped" in capsys.readouterr().out


def test_unseeded_resume_adopts_the_recorded_seed(tmp_path):
    """Regression: resume without --seed must continue the recorded campaign."""
    checkpoint = tmp_path / "ck"
    arguments = ["sigma2n", "--batch", "4", "--n-periods", "1024"]
    arguments += ["--shards", "2", "--checkpoint-dir", str(checkpoint)]
    out_first, out_second = tmp_path / "first.json", tmp_path / "second.json"
    assert main(arguments + ["--json", str(out_first)]) == 0
    assert main(arguments + ["--resume", "--json", str(out_second)]) == 0
    first = json.loads(out_first.read_text())
    second = json.loads(out_second.read_text())
    assert second["spec"]["seed"] == first["spec"]["seed"]
    assert second["table"] == first["table"]


def test_metrics_json_artifact_is_schema_valid(tmp_path, capsys):
    out = tmp_path / "metrics.json"
    arguments = ["sigma2n", "--batch", "8", "--n-periods", "16384"]
    arguments += ["--shards", "2", "--seed", "13"]
    arguments += ["--metrics-json", str(out), "--stats-interval", "0.1"]
    assert main(arguments) == 0
    payload = json.loads(out.read_text())
    assert payload["command"] == "sigma2n"
    assert payload["elapsed_seconds"] >= 0.0
    metrics = payload["metrics"]
    for name, record in metrics.items():
        assert record["type"] in ("counter", "gauge", "histogram"), name
        assert "help" in record and "value" in record, name
    kernel = metrics["engine_kernel_block_seconds"]["value"]
    assert kernel["count"] >= 1
    assert kernel["buckets"][-1][0] == "+Inf"
    assert metrics["plan_cache_misses_total"]["value"] >= 1
    # --stats-interval is accepted alongside --metrics-json; the campaign can
    # finish before the first tick, so the line content is asserted in
    # tests/obs/test_export.py rather than here.
    assert "metrics written to" in capsys.readouterr().out


def test_fabric_metrics_json_includes_the_trace_tree(tmp_path, capsys):
    out = tmp_path / "metrics.json"
    arguments = ["sigma2n", "--batch", "4", "--n-periods", "2048"]
    arguments += ["--shards", "2", "--spawn-workers", "2", "--seed", "13"]
    arguments += ["--metrics-json", str(out), "--trace"]
    assert main(arguments) == 0
    assert "fabric.campaign [" in capsys.readouterr().err
    payload = json.loads(out.read_text())
    assert "fabric_shards_completed_total" in payload["metrics"]
    roots = payload["trace"]
    assert roots[0]["name"] == "fabric.campaign"
    shard_names = {child["name"] for child in roots[0]["children"]}
    assert shard_names == {"fabric.shard"}


def test_resume_requires_checkpoint_dir():
    arguments = ["sigma2n", "--batch", "2", "--n-periods", "128", "--resume"]
    assert main(arguments) == 2


@pytest.mark.parametrize("workers", ["0", "-2"])
def test_invalid_worker_count(workers):
    arguments = ["sigma2n", "--batch", "2", "--n-periods", "128"]
    arguments += ["--workers", workers]
    assert main(arguments) == 2
