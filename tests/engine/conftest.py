"""Shared fixtures for the engine test-suite.

Campaign-scale objects that several tests (or several parametrizations of
one test) only *read* are promoted to module/package scope so the suite
computes them once.  Only read-only results are shared — ensembles and TRNGs
are stateful (their RNG streams advance), so anything that consumes a stream
stays function-scoped by construction.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.engine.campaign import batched_bit_campaign
from repro.paper import PAPER_F0_HZ
from repro.phase.psd import PhaseNoisePSD
from repro.trng.ero_trng import EROTRNGConfiguration

#: Thermal-heavy per-oscillator PSD used by the bit-campaign tests: enough
#: jitter that entropy trends appear at small dividers (fast records).
THERMAL_HEAVY_PSD = PhaseNoisePSD(b_thermal_hz=2.5e4, b_flicker_hz2=0.0)


@pytest.fixture(scope="session")
def thermal_heavy_configuration() -> EROTRNGConfiguration:
    """Shared thermal-heavy eRO-TRNG configuration (divider re-bound per use)."""
    return EROTRNGConfiguration(
        f0_hz=PAPER_F0_HZ,
        oscillator_psd=THERMAL_HEAVY_PSD,
        divider=10,
        frequency_mismatch=1e-3,
    )


@pytest.fixture(scope="session")
def paired_bit_campaign(thermal_heavy_configuration) -> SimpleNamespace:
    """One paired-design bit campaign, shared by every test that reads it.

    Carries its own parameters so comparison tests re-derive the identical
    RNG streams without duplicating magic numbers.
    """
    dividers = (10, 40, 160)
    batch, n_bits, seed = 3, 2000, 13
    result = batched_bit_campaign(
        thermal_heavy_configuration,
        list(dividers),
        batch_size=batch,
        n_bits=n_bits,
        seed=seed,
    )
    return SimpleNamespace(
        result=result, dividers=dividers, batch=batch, n_bits=n_bits, seed=seed
    )
