"""The RNG stream-contract layer: resolution, pinning, refusal, compat.

The counter-based ("philox") contract makes every draw a pure function of
``(root_key, row, block, offset)``; the legacy ("spawn") contract ties
streams to a stateful ``SeedSequence`` spawn tree.  These tests lock the
*plumbing*: how a contract is selected and pinned (args > backend spec >
environment > default), how it serializes through specs, wire payloads and
checkpoint manifests, and where mixing contracts is refused.  The draw-level
index properties live in ``tests/property/test_philox_contract.py``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine.backends import BACKEND_ENV_VAR, BACKEND_NAMES, PhiloxBackend
from repro.engine.backends import parse_backend_spec, resolve_backend
from repro.engine.batch import spawn_generators
from repro.engine.distributed import (
    BitCampaignSpec,
    CampaignCheckpoint,
    Sigma2NCampaignSpec,
    plan_shards,
    run_shard,
)
from repro.engine.distributed.merge import merge_bit_partials, merge_sigma2n_partials
from repro.engine.distributed.spec import spec_from_json, spec_to_json
from repro.engine.rng import (
    DEFAULT_RNG_CONTRACT,
    PhiloxRowStream,
    RNG_CONTRACT_ENV_VAR,
    RNG_CONTRACTS,
    default_rng_contract,
    derive_row_streams,
    philox_row_streams,
    resolve_rng_contract,
    root_key_of,
    validate_rng_contract,
)


class TestContractResolution:
    def test_contract_names(self):
        assert DEFAULT_RNG_CONTRACT == "spawn"
        assert set(RNG_CONTRACTS) == {"spawn", "philox"}
        for name in RNG_CONTRACTS:
            assert validate_rng_contract(name) == name
        with pytest.raises(ValueError, match="unknown rng_contract"):
            validate_rng_contract("sobol")

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(RNG_CONTRACT_ENV_VAR, "philox")
        assert resolve_rng_contract("spawn", backend_spec="philox:4") == "spawn"
        assert resolve_rng_contract("philox") == "philox"

    def test_backend_spec_implies_philox(self, monkeypatch):
        monkeypatch.delenv(RNG_CONTRACT_ENV_VAR, raising=False)
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_rng_contract(backend_spec="philox") == "philox"
        assert resolve_rng_contract(backend_spec="philox:8") == "philox"
        assert resolve_rng_contract(backend_spec="threaded:8") == "spawn"
        assert resolve_rng_contract(backend_spec=None) == "spawn"

    def test_environment_hooks(self, monkeypatch):
        monkeypatch.setenv(RNG_CONTRACT_ENV_VAR, "philox")
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert default_rng_contract() == "philox"
        # REPRO_BACKEND=philox[:N] implies the contract (the CI tier lever);
        # REPRO_RNG_CONTRACT can still override it in either direction.
        monkeypatch.delenv(RNG_CONTRACT_ENV_VAR, raising=False)
        monkeypatch.setenv(BACKEND_ENV_VAR, "philox:4")
        assert default_rng_contract() == "philox"
        monkeypatch.setenv(RNG_CONTRACT_ENV_VAR, "spawn")
        assert default_rng_contract() == "spawn"
        monkeypatch.delenv(RNG_CONTRACT_ENV_VAR, raising=False)
        monkeypatch.setenv(BACKEND_ENV_VAR, "threaded:4")
        assert default_rng_contract() == "spawn"

    def test_invalid_environment_contract_rejected(self, monkeypatch):
        monkeypatch.setenv(RNG_CONTRACT_ENV_VAR, "bogus")
        with pytest.raises(ValueError, match="unknown rng_contract"):
            default_rng_contract()

    def test_philox_backend_carries_native_contract(self):
        assert "philox" in BACKEND_NAMES
        backend = parse_backend_spec("philox:3")
        assert isinstance(backend, PhiloxBackend)
        assert backend.rng_contract == "philox"
        assert backend.spec == "philox:3"
        assert backend.max_workers == 3
        assert resolve_backend("numpy").rng_contract == "spawn"


class TestDeriveRowStreams:
    def test_spawn_contract_matches_legacy_tree(self):
        """The refactor is a pure factoring: spawn streams are unchanged."""
        seed = 20140324
        parent = np.random.Generator(np.random.SFC64(np.random.SeedSequence(seed)))
        legacy = list(parent.spawn(5))
        derived = derive_row_streams(seed, 5, rng_contract="spawn")
        for expected, actual in zip(legacy, derived):
            np.testing.assert_array_equal(
                expected.standard_normal(16), actual.standard_normal(16)
            )

    def test_philox_rows_are_index_keyed(self):
        rows = derive_row_streams(7, 4, rng_contract="philox")
        assert all(isinstance(row, PhiloxRowStream) for row in rows)
        assert [row.path for row in rows] == [(0,), (1,), (2,), (3,)]
        assert all(row.root_key == 7 for row in rows)

    def test_philox_subrange_needs_no_full_tree(self):
        full = derive_row_streams(7, 100, rng_contract="philox")
        sub = derive_row_streams(7, 100, start=97, stop=99, rng_contract="philox")
        for offset, row in enumerate(sub):
            np.testing.assert_array_equal(
                full[97 + offset].standard_normal(8), row.standard_normal(8)
            )

    def test_generator_seed_explicit_philox_rejected(self):
        with pytest.raises(ValueError, match="stateless seed"):
            derive_row_streams(
                np.random.default_rng(0), 2, rng_contract="philox"
            )

    def test_generator_seed_env_philox_degrades_to_spawn(self, monkeypatch):
        monkeypatch.setenv(RNG_CONTRACT_ENV_VAR, "philox")
        parent = np.random.default_rng(3)
        rows = derive_row_streams(parent, 2)
        assert all(isinstance(row, np.random.Generator) for row in rows)

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            derive_row_streams(1, 0)
        with pytest.raises(ValueError, match="rows must satisfy"):
            derive_row_streams(1, 4, start=3, stop=2, rng_contract="philox")
        with pytest.raises(ValueError, match="rows must satisfy"):
            derive_row_streams(1, 4, start=0, stop=5, rng_contract="philox")

    def test_spawn_generators_passes_contract_through(self):
        via_wrapper = spawn_generators(11, 3, rng_contract="philox")
        direct = derive_row_streams(11, 3, rng_contract="philox")
        for expected, actual in zip(direct, via_wrapper):
            np.testing.assert_array_equal(
                expected.standard_normal(4), actual.standard_normal(4)
            )

    def test_seed_sequence_spawn_key_prefixes_the_path(self):
        child = np.random.SeedSequence(99).spawn(3)[2]
        root_key, prefix = root_key_of(child)
        assert root_key == 99
        assert prefix == (2,)
        rows = philox_row_streams(child, 0, 2)
        assert rows[0].path == (2, 0)
        assert rows[1].path == (2, 1)
        # ... and the prefixed family differs from the parent's.
        parent_rows = philox_row_streams(99, 0, 2)
        assert not np.array_equal(
            rows[0].standard_normal(8), parent_rows[0].standard_normal(8)
        )

    def test_root_key_rejects_generators(self):
        with pytest.raises(TypeError, match="stateless seed"):
            root_key_of(np.random.default_rng(0))


class TestPhiloxRowStream:
    def test_draws_are_recomputable_by_block(self):
        stream = PhiloxRowStream(5, (2,))
        first = stream.standard_normal(16)
        second = stream.normal(0.0, 2.0, 16)
        np.testing.assert_array_equal(
            first, PhiloxRowStream(5, (2,)).block_generator(0).standard_normal(16)
        )
        np.testing.assert_array_equal(
            second,
            PhiloxRowStream(5, (2,)).block_generator(1).normal(0.0, 2.0, 16),
        )

    def test_sibling_and_depth_keys_never_collide(self):
        draws = [
            PhiloxRowStream(5, (0,)).standard_normal(4),
            PhiloxRowStream(5, (1,)).standard_normal(4),
            PhiloxRowStream(5, (0, 0)).standard_normal(4),
            PhiloxRowStream(5, (0, 1)).standard_normal(4),
        ]
        for index, left in enumerate(draws):
            for right in draws[index + 1 :]:
                assert not np.array_equal(left, right)

    def test_spawn_counts_like_generator_spawn(self):
        stream = PhiloxRowStream(5, (3,))
        first_pair = stream.spawn(2)
        second_pair = stream.spawn(2)
        assert [child.path for child in first_pair] == [(3, 0), (3, 1)]
        assert [child.path for child in second_pair] == [(3, 2), (3, 3)]
        with pytest.raises(ValueError):
            stream.spawn(-1)

    def test_repr_shows_indices(self):
        assert "path=(1,)" in repr(PhiloxRowStream(9, (1,)))


class TestSpecContractPinning:
    def test_specs_pin_and_roundtrip_the_contract(self):
        spec = BitCampaignSpec(
            batch_size=2, n_bits=32, dividers=(8,), seed=1, rng_contract="philox"
        )
        assert spec.rng_contract == "philox"
        assert spec_from_json(spec_to_json(spec)) == spec
        sigma = Sigma2NCampaignSpec(batch_size=2, n_periods=64, seed=1)
        assert sigma.rng_contract == default_rng_contract()

    def test_philox_backend_spec_implies_the_contract(self):
        spec = Sigma2NCampaignSpec(
            batch_size=2, n_periods=64, seed=1, backend="philox:2"
        )
        assert spec.rng_contract == "philox"
        # An explicit contract still overrides the backend's native one.
        pinned = Sigma2NCampaignSpec(
            batch_size=2,
            n_periods=64,
            seed=1,
            backend="philox:2",
            rng_contract="spawn",
        )
        assert pinned.rng_contract == "spawn"

    def test_environment_default_reaches_specs(self, monkeypatch):
        monkeypatch.setenv(RNG_CONTRACT_ENV_VAR, "philox")
        spec = BitCampaignSpec(batch_size=2, n_bits=32, dividers=(8,), seed=1)
        assert spec.rng_contract == "philox"

    def test_invalid_contract_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown rng_contract"):
            BitCampaignSpec(
                batch_size=2, n_bits=32, dividers=(8,), seed=1, rng_contract="x"
            )

    def test_legacy_manifest_payload_defaults_to_spawn(self):
        spec = Sigma2NCampaignSpec(batch_size=2, n_periods=64, seed=1)
        payload = spec_to_json(spec)
        del payload["rng_contract"]  # pre-contract manifests have no field
        assert spec_from_json(payload).rng_contract == "spawn"

    def test_row_generators_follow_the_pinned_contract(self, monkeypatch):
        spec = Sigma2NCampaignSpec(
            batch_size=3, n_periods=64, seed=4, rng_contract="philox"
        )
        # The pin, not the worker's environment, decides the streams.
        monkeypatch.setenv(RNG_CONTRACT_ENV_VAR, "spawn")
        rows = spec.row_generators()
        assert all(isinstance(row, PhiloxRowStream) for row in rows)
        sub = spec.row_generators(1, 3)
        np.testing.assert_array_equal(
            rows[1].standard_normal(8), sub[0].standard_normal(8)
        )


class TestMergeRefusal:
    def _bit_partials(self, rng_contract):
        spec = BitCampaignSpec(
            batch_size=4,
            n_bits=64,
            dividers=(16,),
            seed=5,
            rng_contract=rng_contract,
        )
        shards = plan_shards(spec.batch_size, 2)
        return spec, [run_shard((spec, shard)) for shard in shards]

    def test_partials_carry_the_contract(self):
        _, partials = self._bit_partials("philox")
        assert all(
            str(np.asarray(partial["rng_contract"])) == "philox"
            for partial in partials
        )

    def test_mixed_contract_bit_merge_refused(self):
        philox_spec, philox_partials = self._bit_partials("philox")
        spawn_spec, spawn_partials = self._bit_partials("spawn")
        with pytest.raises(ValueError, match="mixed RNG stream contracts"):
            merge_bit_partials(philox_spec, spawn_partials)
        with pytest.raises(ValueError, match="mixed RNG stream contracts"):
            merge_bit_partials(
                spawn_spec, [philox_partials[0], spawn_partials[1]]
            )

    def test_mixed_contract_sigma2n_merge_refused(self):
        def partials(contract):
            spec = Sigma2NCampaignSpec(
                batch_size=4, n_periods=128, seed=5, rng_contract=contract
            )
            shards = plan_shards(spec.batch_size, 2)
            return spec, [run_shard((spec, shard)) for shard in shards]

        philox_spec, _ = partials("philox")
        _, spawn_partials = partials("spawn")
        with pytest.raises(ValueError, match="mixed RNG stream contracts"):
            merge_sigma2n_partials(philox_spec, spawn_partials)

    def test_legacy_untagged_partials_merge_as_spawn(self):
        spec, partials = self._bit_partials("spawn")
        for partial in partials:
            del partial["rng_contract"]  # pre-contract shard checkpoints
        merged = merge_bit_partials(spec, partials)
        assert merged.bias.shape == (1, 4)


class TestCheckpointCompat:
    def test_legacy_manifest_resumes_under_spawn_spec(self, tmp_path):
        """A manifest written before the contract field must keep resuming."""
        spec = Sigma2NCampaignSpec(
            batch_size=4, n_periods=128, seed=3, rng_contract="spawn"
        )
        plan = plan_shards(spec.batch_size, 2)
        checkpoint = CampaignCheckpoint(tmp_path)
        checkpoint.initialize(spec, plan, resume=False)
        checkpoint.release()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        del manifest["spec"]["rng_contract"]  # simulate a pre-contract file
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        resumed = CampaignCheckpoint(tmp_path)
        assert resumed.initialize(spec, plan, resume=True) == set()
        resumed.release()

    def test_contract_change_refuses_to_resume(self, tmp_path):
        spawn_spec = Sigma2NCampaignSpec(
            batch_size=4, n_periods=128, seed=3, rng_contract="spawn"
        )
        plan = plan_shards(spawn_spec.batch_size, 2)
        checkpoint = CampaignCheckpoint(tmp_path)
        checkpoint.initialize(spawn_spec, plan, resume=False)
        checkpoint.release()
        philox_spec = Sigma2NCampaignSpec(
            batch_size=4, n_periods=128, seed=3, rng_contract="philox"
        )
        resumed = CampaignCheckpoint(tmp_path)
        with pytest.raises(ValueError, match="different campaign"):
            resumed.initialize(philox_spec, plan, resume=True)
        resumed.release()


class TestCampaignsCLI:
    def test_rng_contract_flag_pins_the_spec(self, tmp_path):
        from repro.campaigns import main

        out = tmp_path / "bits.json"
        arguments = ["bits", "--batch", "2", "--n-bits", "256"]
        arguments += ["--dividers", "8", "--seed", "5", "--shards", "2"]
        arguments += ["--rng-contract", "philox", "--verify"]
        arguments += ["--json", str(out)]
        assert main(arguments) == 0
        payload = json.loads(out.read_text())
        assert payload["spec"]["rng_contract"] == "philox"

    def test_philox_backend_flag_implies_contract(self, tmp_path):
        from repro.campaigns import main

        out = tmp_path / "sigma2n.json"
        arguments = ["sigma2n", "--batch", "2", "--n-periods", "1024"]
        arguments += ["--seed", "5", "--backend", "philox:2", "--verify"]
        arguments += ["--json", str(out)]
        assert main(arguments) == 0
        payload = json.loads(out.read_text())
        assert payload["spec"]["rng_contract"] == "philox"

    def test_unpinned_resume_adopts_recorded_contract(self, tmp_path):
        from repro.campaigns import main

        checkpoint = tmp_path / "ck"
        out = tmp_path / "out.json"
        arguments = ["bits", "--batch", "2", "--n-bits", "128", "--dividers", "8"]
        arguments += ["--seed", "5", "--checkpoint-dir", str(checkpoint)]
        assert main(arguments + ["--rng-contract", "philox"]) == 0
        # Resume without --rng-contract: adopt the recorded contract instead
        # of refusing on a spec mismatch.
        assert main(arguments + ["--resume", "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["spec"]["rng_contract"] == "philox"
