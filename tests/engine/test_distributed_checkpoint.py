"""Checkpoint/resume tests: manifests, per-shard partials, mismatch refusal."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine.campaign import batched_sigma2_n_campaign
from repro.engine.distributed import (
    CampaignCheckpoint,
    Sigma2NCampaignSpec,
    plan_shards,
    run_campaign,
    run_shard,
)


@pytest.fixture()
def spec() -> Sigma2NCampaignSpec:
    return Sigma2NCampaignSpec(batch_size=8, n_periods=4096, seed=77)


@pytest.fixture()
def reference(spec):
    return batched_sigma2_n_campaign(spec.ensemble(), spec.n_periods)


def test_interrupted_run_resumes_only_missing_shards(
    spec, reference, tmp_path, monkeypatch
):
    plan = plan_shards(spec.batch_size, 4)
    checkpoint = CampaignCheckpoint(tmp_path)
    checkpoint.initialize(spec, plan, resume=False)
    # Simulate an interrupted run: shards 0 and 2 already completed.
    for shard in (plan.shards[0], plan.shards[2]):
        checkpoint.save_partial(shard.index, run_shard((spec, shard)))
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    assert manifest["completed"] == [0, 2]

    import repro.engine.distributed.runner as runner_module

    executed = []
    original = runner_module.run_shard

    def counting_run_shard(task):
        executed.append(task[1].index)
        return original(task)

    monkeypatch.setattr(runner_module, "run_shard", counting_run_shard)
    result = run_campaign(
        spec, n_shards=4, checkpoint_dir=tmp_path, resume=True
    )
    assert sorted(executed) == [1, 3]
    np.testing.assert_array_equal(result.sigma2_s2, reference.sigma2_s2)
    np.testing.assert_array_equal(
        result.table()["b_thermal_hz"], reference.table()["b_thermal_hz"]
    )

    # A second resume finds every shard cached and recomputes nothing.
    executed.clear()
    cached = run_campaign(
        spec, n_shards=4, checkpoint_dir=tmp_path, resume=True
    )
    assert executed == []
    np.testing.assert_array_equal(cached.sigma2_s2, reference.sigma2_s2)


def test_streaming_partials_round_trip_through_npz(tmp_path):
    spec = Sigma2NCampaignSpec(
        batch_size=4, n_periods=8192, chunk_periods=2048, seed=3
    )
    reference = batched_sigma2_n_campaign(
        spec.ensemble(), spec.n_periods, chunk_periods=spec.chunk_periods
    )
    run_campaign(spec, n_shards=2, checkpoint_dir=tmp_path)
    resumed = run_campaign(
        spec, n_shards=2, checkpoint_dir=tmp_path, resume=True
    )
    np.testing.assert_array_equal(resumed.sigma2_s2, reference.sigma2_s2)
    np.testing.assert_array_equal(
        resumed.table()["b_flicker_hz2"], reference.table()["b_flicker_hz2"]
    )


def test_resume_refuses_foreign_manifest(spec, tmp_path):
    run_campaign(spec, n_shards=2, checkpoint_dir=tmp_path)
    other = Sigma2NCampaignSpec(batch_size=8, n_periods=4096, seed=78)
    with pytest.raises(ValueError, match="different campaign"):
        run_campaign(other, n_shards=2, checkpoint_dir=tmp_path, resume=True)
    with pytest.raises(ValueError, match="shard plan"):
        run_campaign(spec, n_shards=3, checkpoint_dir=tmp_path, resume=True)


def test_resume_without_checkpoint_dir_is_an_error(spec):
    with pytest.raises(ValueError, match="checkpoint"):
        run_campaign(spec, n_shards=2, resume=True)


def test_resume_with_empty_directory_starts_fresh(spec, reference, tmp_path):
    result = run_campaign(
        spec, n_shards=2, checkpoint_dir=tmp_path, resume=True
    )
    np.testing.assert_array_equal(result.sigma2_s2, reference.sigma2_s2)
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    assert manifest["completed"] == [0, 1]
    assert manifest["spec"]["seed"] == spec.seed
