"""Equivalence of the batched bit pipeline with the scalar TRNG path.

The tentpole contract (ISSUE 2): batched row ``i`` of the bit pipeline —
:class:`repro.engine.bits.BatchedDFlipFlopSampler`,
:class:`repro.engine.bits.BatchedEROTRNG`, the batched AIS31 batteries and
the batched entropy estimators — must reproduce the scalar
``DFlipFlopSampler`` / ``EROTRNG.generate`` outputs **bit-for-bit** for the
same seed, across divider values, and the scalar classes must behave as thin
``B = 1`` views over the batched kernel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.batch import spawn_generators
from repro.engine.bits import (
    BatchedDFlipFlopSampler,
    BatchedEROTRNG,
    square_wave_level_batch,
)
from repro.engine.campaign import batched_bit_campaign
from repro.oscillator.period_model import IdealClock
from repro.paper import PAPER_F0_HZ
from repro.phase.psd import PhaseNoisePSD
from repro.trng.digitizer import DFlipFlopSampler, square_wave_level
from repro.trng.entropy import (
    bit_bias,
    min_entropy_per_bit,
    shannon_entropy_per_bit,
)
from repro.trng.ero_trng import EROTRNG, EROTRNGConfiguration

F0 = PAPER_F0_HZ

PSD_CASES = {
    "thermal-only": PhaseNoisePSD(b_thermal_hz=276.04, b_flicker_hz2=0.0),
    "mixed": PhaseNoisePSD(b_thermal_hz=276.04, b_flicker_hz2=5.42),
}

#: The acceptance criterion requires at least three divider values.
DIVIDERS = (8, 33, 128)


def _configuration(divider: int, psd: PhaseNoisePSD) -> EROTRNGConfiguration:
    return EROTRNGConfiguration(
        f0_hz=F0,
        oscillator_psd=psd,
        divider=divider,
        frequency_mismatch=1e-3,
    )


class TestBatchedEROTRNGEquivalence:
    @pytest.mark.parametrize("psd", PSD_CASES.values(), ids=PSD_CASES.keys())
    @pytest.mark.parametrize("divider", DIVIDERS)
    def test_rows_reproduce_scalar_generate_bitwise(self, psd, divider):
        """Batched row i == scalar EROTRNG.generate for the spawned child seed."""
        batch, n_bits, seed = 5, 400, 20140324 + divider
        configuration = _configuration(divider, psd)
        batched = BatchedEROTRNG(configuration, batch_size=batch, seed=seed)
        bits = batched.generate_raw(n_bits)
        children = spawn_generators(seed, batch)
        for row in range(batch):
            scalar = EROTRNG(configuration, rng=children[row])
            result = scalar.generate_raw(n_bits)
            np.testing.assert_array_equal(bits.bits[row], result.bits)
            np.testing.assert_array_equal(
                bits.sample_times_s[row], result.sample_times_s
            )

    def test_generate_matches_generate_raw_bits(self):
        configuration = _configuration(16, PSD_CASES["mixed"])
        trng_a = BatchedEROTRNG(configuration, batch_size=3, seed=1)
        trng_b = BatchedEROTRNG(configuration, batch_size=3, seed=1)
        np.testing.assert_array_equal(
            trng_a.generate(257), trng_b.generate_raw(257).bits
        )

    def test_streaming_calls_continue_the_record(self):
        """sample(a) + sample(b) == sample(a + b), per row, bit-for-bit."""
        configuration = _configuration(33, PSD_CASES["mixed"])
        one_shot = BatchedEROTRNG(configuration, batch_size=4, seed=9)
        chunked = BatchedEROTRNG(configuration, batch_size=4, seed=9)
        whole = one_shot.generate_raw(300)
        parts = [chunked.generate_raw(k) for k in (1, 7, 100, 192)]
        np.testing.assert_array_equal(
            whole.bits, np.concatenate([part.bits for part in parts], axis=1)
        )
        np.testing.assert_array_equal(
            whole.sample_times_s,
            np.concatenate([part.sample_times_s for part in parts], axis=1),
        )

    def test_generate_exact_rows_match_scalar(self):
        configuration = _configuration(8, PSD_CASES["thermal-only"])
        batched = BatchedEROTRNG(configuration, batch_size=3, seed=77)
        block = batched.generate_exact(300, chunk_bits=128)
        assert block.shape == (3, 300)
        children = spawn_generators(77, 3)
        for row in range(3):
            scalar = EROTRNG(configuration, rng=children[row])
            np.testing.assert_array_equal(
                block[row], scalar.generate_exact(300, chunk_bits=128)
            )

    def test_batched_postprocessor_applied_per_row(self):
        from repro.trng.postprocessing import von_neumann

        configuration = _configuration(8, PSD_CASES["thermal-only"])
        trng = BatchedEROTRNG(
            configuration, batch_size=3, seed=5, postprocessor=von_neumann
        )
        rows = trng.generate(512)
        assert isinstance(rows, list) and len(rows) == 3
        assert all(0 < row.size < 512 for row in rows)

    def test_validation_errors(self):
        configuration = _configuration(8, PSD_CASES["thermal-only"])
        with pytest.raises(ValueError):
            BatchedEROTRNG(configuration, batch_size=0)
        with pytest.raises(ValueError):
            BatchedEROTRNG(
                configuration, batch_size=3, rngs=[np.random.default_rng()]
            )
        trng = BatchedEROTRNG(configuration, batch_size=2, seed=1)
        with pytest.raises(ValueError):
            trng.generate_raw(0)


class TestBatchedSamplerEquivalence:
    def test_scalar_sampler_is_thin_view_over_kernel(self):
        """DFlipFlopSampler.sample == a fresh B=1 batched kernel's sample."""
        psd = PSD_CASES["mixed"]
        from repro.oscillator.ring import RingOscillator

        children = spawn_generators(3, 2)
        scalar = DFlipFlopSampler(
            RingOscillator(F0 * 1.0005, psd, rng=children[0]),
            RingOscillator(F0 * 0.9995, psd, rng=children[1]),
            divider=16,
        ).sample(200)
        # Fresh spawn of the same seed: the kernel replays identical streams.
        children = spawn_generators(3, 2)
        kernel = BatchedDFlipFlopSampler(
            RingOscillator(F0 * 1.0005, psd, rng=children[0]),
            RingOscillator(F0 * 0.9995, psd, rng=children[1]),
            divider=16,
        )
        batched = kernel.sample(200)
        np.testing.assert_array_equal(scalar.bits, batched.bits[0])
        assert scalar.sampling_frequency_hz == pytest.approx(
            float(batched.sampling_frequency_hz[0])
        )

    def test_ideal_clock_rows_match_scalar_sampler(self):
        scalar = DFlipFlopSampler(IdealClock(3.1e6), IdealClock(2e6), divider=2)
        kernel = BatchedDFlipFlopSampler(
            IdealClock(3.1e6), IdealClock(2e6), divider=2
        )
        np.testing.assert_array_equal(
            scalar.sample(100).bits, kernel.sample(100).bits[0]
        )

    def test_batch_size_mismatch_rejected(self):
        psd = PSD_CASES["thermal-only"]
        from repro.engine.batch import BatchedOscillatorEnsemble

        fast = BatchedOscillatorEnsemble(F0, psd, batch_size=3, seed=0)
        slow = BatchedOscillatorEnsemble(F0, psd, batch_size=2, seed=1)
        with pytest.raises(ValueError, match="batch mismatch"):
            BatchedDFlipFlopSampler(fast, slow)

    def test_result_row_view(self):
        configuration = _configuration(8, PSD_CASES["thermal-only"])
        result = BatchedEROTRNG(configuration, batch_size=2, seed=4).generate_raw(64)
        row = result.row(1)
        np.testing.assert_array_equal(row.bits, result.bits[1])
        assert row.n_bits == 64
        assert row.accumulation_ratio == pytest.approx(
            float(result.accumulation_ratio[1])
        )


class TestSquareWaveLevelBatch:
    def test_rows_match_scalar_function(self, rng):
        edges = np.cumsum(rng.uniform(0.5, 1.5, size=(4, 64)), axis=1)
        samples = np.sort(
            rng.uniform(edges[:, :1] + 1e-9, edges[:, -1:] - 1e-9, size=(4, 40)),
            axis=1,
        )
        levels = square_wave_level_batch(samples, edges, duty_cycle=0.37)
        for row in range(4):
            np.testing.assert_array_equal(
                levels[row],
                square_wave_level(samples[row], edges[row], duty_cycle=0.37),
            )

    def test_unsorted_sample_rows_supported(self, rng):
        edges = np.arange(0.0, 32.0)[None, :].repeat(2, axis=0)
        samples = rng.uniform(0.0, 30.9, size=(2, 25))
        levels = square_wave_level_batch(samples, edges)
        for row in range(2):
            np.testing.assert_array_equal(
                levels[row], square_wave_level(samples[row], edges[row])
            )


class TestBatchedBitCampaign:
    def test_campaign_table_shape(self, paired_bit_campaign):
        assert paired_bit_campaign.result.bias.shape == (3, 3)
        assert paired_bit_campaign.result.n_dividers == 3
        assert paired_bit_campaign.result.batch_size == 3

    @pytest.mark.slow
    def test_campaign_rows_match_scalar_trngs(
        self, paired_bit_campaign, thermal_heavy_configuration
    ):
        """Campaign cell (divider d, instance i) == scalar TRNG estimates."""
        from dataclasses import replace

        campaign = paired_bit_campaign
        result = campaign.result
        for index, divider in enumerate(campaign.dividers):
            children = spawn_generators(campaign.seed, campaign.batch)
            for row in range(campaign.batch):
                scalar = EROTRNG(
                    replace(thermal_heavy_configuration, divider=divider),
                    rng=children[row],
                )
                bits = scalar.generate(campaign.n_bits)
                assert result.bias[index, row] == bit_bias(bits)
                assert result.shannon_entropy[index, row] == pytest.approx(
                    shannon_entropy_per_bit(bits), rel=1e-12
                )
                assert result.min_entropy[index, row] == pytest.approx(
                    min_entropy_per_bit(bits, block_size=8), rel=1e-12
                )

    @pytest.mark.slow
    def test_entropy_increases_with_divider(self, thermal_heavy_configuration):
        """More accumulation -> more entropy: the paper's design guidance."""
        result = batched_bit_campaign(
            thermal_heavy_configuration, [4, 600], batch_size=6, n_bits=4000, seed=2
        )
        summary = result.entropy_vs_divider()
        assert summary["markov_entropy"][1] > summary["markov_entropy"][0]

    @pytest.mark.slow
    def test_ais31_verdict_arrays(self, thermal_heavy_configuration):
        from dataclasses import replace

        result = batched_bit_campaign(
            replace(thermal_heavy_configuration, divider=250),
            [250],
            batch_size=2,
            n_bits=21_000,
            seed=3,
            run_procedure_a=True,
        )
        assert result.procedure_a_passed.shape == (1, 2)
        assert result.procedure_b_passed is None
        table = result.table()
        assert "procedure_a_passed" in table
        assert "pass" in result.format_table() or "FAIL" in result.format_table()

    def test_validation(self):
        configuration = _configuration(8, PSD_CASES["thermal-only"])
        with pytest.raises(ValueError):
            batched_bit_campaign(configuration, [], batch_size=2, n_bits=100)
        with pytest.raises(ValueError):
            batched_bit_campaign(configuration, [0], batch_size=2, n_bits=100)
        with pytest.raises(ValueError):
            batched_bit_campaign(configuration, [8], batch_size=2, n_bits=0)
