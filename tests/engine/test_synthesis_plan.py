"""Synthesis-plan cache: cached setup == inline setup, bit for bit.

The tentpole contract (ISSUE 6): a cached
:class:`~repro.engine.backends.plan.SynthesisPlan` must never change a
single output bit.  The matrix here runs every backend x flicker method x
batch size with the cache enabled and disabled and demands
``np.array_equal``, including a group-key collision (two groups differing
only in ``n``) and a cache-eviction storm (capacity 1, alternating keys).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.backends import (
    configure_plan_cache,
    plan_cache_stats,
    reset_plan_cache,
    resolve_backend,
    synthesis_plan,
)
from repro.engine.backends.kernel import flicker_offsets, run_block
from repro.engine.backends.plan import DEFAULT_PLAN_CACHE_SIZE, build_plan
from repro.engine.batch import spawn_generators

BACKENDS = ("numpy", "threaded:2", "auto:2")
METHODS = ("spectral", "ar", "hosking")
BATCHES = (1, 3)

SIGMA = 1.4e-12
H_MINUS1 = 2.5e-22


@pytest.fixture(autouse=True)
def fresh_plan_cache():
    """Each test starts from an empty cache and leaves a clean default one."""
    reset_plan_cache()
    configure_plan_cache(DEFAULT_PLAN_CACHE_SIZE)
    yield
    reset_plan_cache()
    configure_plan_cache(DEFAULT_PLAN_CACHE_SIZE)


def _synthesize(backend_spec: str, batch: int, n: int, method: str, seed: int = 11):
    """One backend call on freshly respawned per-row streams."""
    backend = resolve_backend(backend_spec)
    rngs = spawn_generators(seed, batch)
    sigma = np.full(batch, SIGMA)
    h_minus1 = np.full(batch, H_MINUS1)
    if batch >= 3:
        h_minus1[1] = 0.0  # a thermal-only row keeps the compact pink packing honest
        sigma[2] = 0.0
    return backend.synthesize(n, rngs, sigma, h_minus1, method)


class TestPlanContents:
    def test_spectral_plan_tables(self):
        plan = synthesis_plan(100, "spectral", True)
        assert plan.n_fft == 256
        assert plan.spectral_scaling.shape == (129,)
        assert plan.spectral_scaling[0] == 0.0
        assert not plan.spectral_scaling.flags.writeable
        assert plan.ar_tables is None

    def test_ar_plan_tables(self):
        plan = synthesis_plan(128, "ar", True)
        assert plan.spectral_scaling is None
        tables = plan.ar_tables
        assert tables is not None
        assert tables.corners.shape == tables.poles.shape == tables.weights.shape
        assert not tables.poles.flags.writeable
        np.testing.assert_array_equal(
            tables.poles, np.exp(-2.0 * np.pi * tables.corners)
        )

    def test_hosking_and_flickerless_plans_carry_no_tables(self):
        for plan in (
            synthesis_plan(64, "hosking", True),
            synthesis_plan(64, "spectral", False),
        ):
            assert plan.n_fft is None
            assert plan.spectral_scaling is None
            assert plan.ar_tables is None

    def test_build_plan_validation(self):
        with pytest.raises(ValueError):
            build_plan(0, "spectral", True)
        with pytest.raises(ValueError):
            build_plan(16, "nope", True)


class TestCacheMechanics:
    def test_hit_returns_the_shared_instance(self):
        first = synthesis_plan(256, "spectral", True)
        second = synthesis_plan(256, "spectral", True)
        assert second is first
        stats = plan_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["size"] == 1

    def test_distinct_keys_get_distinct_plans(self):
        by_n = synthesis_plan(64, "spectral", True)
        collision = synthesis_plan(96, "spectral", True)
        assert collision is not by_n
        assert by_n.n_fft != collision.n_fft or by_n.n_periods != collision.n_periods
        assert synthesis_plan(64, "ar", True) is not by_n
        assert synthesis_plan(64, "spectral", False) is not by_n
        assert plan_cache_stats()["size"] == 4

    def test_disabled_cache_builds_fresh_but_equal_plans(self):
        configure_plan_cache(0)
        first = synthesis_plan(128, "spectral", True)
        second = synthesis_plan(128, "spectral", True)
        assert second is not first
        np.testing.assert_array_equal(first.spectral_scaling, second.spectral_scaling)
        assert plan_cache_stats()["size"] == 0

    def test_eviction_counts_and_capacity(self):
        configure_plan_cache(1)
        synthesis_plan(64, "spectral", True)
        synthesis_plan(96, "spectral", True)  # evicts the 64-plan
        synthesis_plan(64, "spectral", True)  # rebuilt: a miss, not a hit
        stats = plan_cache_stats()
        assert stats["evictions"] == 2
        assert stats["misses"] == 3 and stats["hits"] == 0
        assert stats["size"] == 1

    def test_configure_shrink_evicts_immediately(self):
        synthesis_plan(64, "spectral", True)
        synthesis_plan(96, "spectral", True)
        configure_plan_cache(1)
        assert plan_cache_stats()["size"] == 1

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError):
            configure_plan_cache(-1)


@pytest.mark.parametrize("batch", BATCHES)
@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("backend", BACKENDS)
class TestCachedEqualsUncached:
    """The acceptance matrix: cache on == cache off, backend x method x B."""

    def test_bitwise_equal(self, backend, method, batch):
        n = 200 if method != "hosking" else 48
        reset_plan_cache()
        configure_plan_cache(0)
        uncached = _synthesize(backend, batch, n, method)
        reset_plan_cache()
        configure_plan_cache(DEFAULT_PLAN_CACHE_SIZE)
        cold = _synthesize(backend, batch, n, method)
        warm = _synthesize(backend, batch, n, method)  # served from cache
        assert plan_cache_stats()["hits"] >= 1
        for left, right in ((uncached, cold), (uncached, warm)):
            np.testing.assert_array_equal(left[0], right[0])
            np.testing.assert_array_equal(left[1], right[1])


class TestPlanlessKernelReference:
    """run_block(plan=None) is the inline reference the cache must match."""

    @pytest.mark.parametrize("method", METHODS)
    def test_backend_matches_inline_kernel(self, method):
        n = 96 if method != "hosking" else 40
        batch = 3
        sigma = np.full(batch, SIGMA)
        h_minus1 = np.array([H_MINUS1, 0.0, H_MINUS1])
        offsets = flicker_offsets(h_minus1)
        thermal = np.zeros((batch, n))
        pink = np.empty((int(offsets[-1]), n))
        run_block(
            n,
            spawn_generators(3, batch),
            sigma,
            h_minus1,
            method,
            thermal,
            pink,
            0,
            0,
            batch,
            plan=None,
        )
        backend = resolve_backend("numpy")
        got_thermal, got_pink = backend.synthesize(
            n, spawn_generators(3, batch), sigma, h_minus1, method
        )
        np.testing.assert_array_equal(thermal, got_thermal)
        np.testing.assert_array_equal(pink, got_pink)


class TestCollisionAndEvictionEquivalence:
    def test_group_key_collision_interleaved(self):
        """Two groups differing only in ``n`` share the cache without mixing."""
        configure_plan_cache(0)
        expect_small = _synthesize("numpy", 2, 64, "spectral")
        expect_large = _synthesize("numpy", 2, 96, "spectral")
        reset_plan_cache()
        configure_plan_cache(DEFAULT_PLAN_CACHE_SIZE)
        for _ in range(3):  # interleave so both keys stay live
            got_small = _synthesize("numpy", 2, 64, "spectral")
            got_large = _synthesize("numpy", 2, 96, "spectral")
            np.testing.assert_array_equal(expect_small[0], got_small[0])
            np.testing.assert_array_equal(expect_small[1], got_small[1])
            np.testing.assert_array_equal(expect_large[0], got_large[0])
            np.testing.assert_array_equal(expect_large[1], got_large[1])
        stats = plan_cache_stats()
        assert stats["size"] == 2 and stats["hits"] >= 4

    def test_eviction_storm_stays_bitwise_correct(self):
        """Capacity 1 with alternating keys: every rebuild must be identical."""
        configure_plan_cache(0)
        expect_a = _synthesize("numpy", 1, 64, "ar")
        expect_b = _synthesize("numpy", 1, 96, "ar")
        reset_plan_cache()
        configure_plan_cache(1)
        for _ in range(3):
            got_a = _synthesize("numpy", 1, 64, "ar")
            got_b = _synthesize("numpy", 1, 96, "ar")
            np.testing.assert_array_equal(expect_a[1], got_a[1])
            np.testing.assert_array_equal(expect_b[1], got_b[1])
        assert plan_cache_stats()["evictions"] >= 5
