"""Streaming engine tests: chunked estimation and chunked campaigns.

Two distinct guarantees are exercised:

* feeding an *existing* record to the streaming estimator in chunks counts
  exactly the same ``s_N`` windows as the one-shot estimator (agreement to
  floating-point accuracy, any chunking);
* a chunked *generated* campaign over >= 10^6 periods matches the monolithic
  campaign estimates within statistical tolerance (chunking truncates flicker
  correlations at the chunk length, so only statistical agreement is
  possible there).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fitting import fit_sigma2_n_curve
from repro.core.sigma_n import (
    accumulated_variance_curve,
    accumulated_variance_curves,
    sigma2_n_estimate,
)
from repro.core.theory import sigma2_n_closed_form
from repro.engine.batch import BatchedOscillatorEnsemble
from repro.engine.streaming import (
    StreamingSigma2NEstimator,
    streaming_accumulated_variance_curves,
)
from repro.paper import PAPER_F0_HZ, paper_phase_noise_psd
from repro.phase.psd import PhaseNoisePSD

F0 = PAPER_F0_HZ


class TestStreamingEstimatorWindowExactness:
    @pytest.mark.parametrize("overlapping", [True, False])
    @pytest.mark.parametrize(
        "chunk_sizes",
        [
            [50_000],
            [7, 1234, 999, 12345, 20_000, 15_415],
            [1] * 200 + [49_800],
        ],
        ids=["one-shot", "ragged", "tiny-then-big"],
    )
    def test_matches_one_shot_for_any_chunking(self, rng, overlapping, chunk_sizes):
        record = rng.normal(0.0, 1e-12, size=(2, 50_000))
        sweep = [1, 2, 5, 17, 100, 400]
        estimator = StreamingSigma2NEstimator(
            sweep, batch_size=2, overlapping=overlapping
        )
        position = 0
        for size in chunk_sizes:
            estimator.update(record[:, position : position + size])
            position += size
        assert position == 50_000
        assert estimator.n_samples_seen == 50_000
        streamed = estimator.curves(F0)
        one_shot = accumulated_variance_curves(
            record, F0, n_sweep=sweep, overlapping=overlapping
        )
        for streamed_curve, reference in zip(streamed, one_shot):
            np.testing.assert_array_equal(
                streamed_curve.n_values, reference.n_values
            )
            np.testing.assert_array_equal(
                streamed_curve.realization_counts, reference.realization_counts
            )
            np.testing.assert_allclose(
                streamed_curve.sigma2_values_s2,
                reference.sigma2_values_s2,
                rtol=1e-9,
            )

    def test_one_dimensional_chunks_accepted(self, rng):
        record = rng.normal(size=2000)
        estimator = StreamingSigma2NEstimator([3], batch_size=1)
        for chunk in np.array_split(record, 7):
            estimator.update(chunk)
        curve = estimator.curves(F0)[0]
        expected = sigma2_n_estimate(record, 3)
        assert curve.sigma2_values_s2[0] == pytest.approx(expected, rel=1e-9)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            StreamingSigma2NEstimator([])
        with pytest.raises(ValueError):
            StreamingSigma2NEstimator([0])
        with pytest.raises(ValueError):
            StreamingSigma2NEstimator([3], batch_size=0)
        estimator = StreamingSigma2NEstimator([3], batch_size=2)
        with pytest.raises(ValueError):
            estimator.update(np.zeros((3, 10)))
        with pytest.raises(ValueError):
            # No samples consumed yet: no point can be estimated.
            estimator.curves(F0)

    def test_min_realizations_rule_matches_one_shot(self, rng):
        record = rng.normal(size=(1, 600))
        sweep = [1, 10, 300]  # N = 300 needs 2N = 600 -> only one realization
        estimator = StreamingSigma2NEstimator(sweep, batch_size=1)
        estimator.update(record)
        curve = estimator.curves(F0, min_realizations=8)[0]
        reference = accumulated_variance_curve(
            record[0], F0, n_sweep=sweep, min_realizations=8
        )
        np.testing.assert_array_equal(curve.n_values, reference.n_values)
        assert 300 not in curve.n_values


class TestStreamingCampaign:
    @pytest.mark.slow
    def test_million_period_campaign_matches_monolithic(self):
        """Chunked >= 10^6-period campaign agrees with the one-shot campaign.

        Thermal-only PSD: chunked synthesis is then statistically identical to
        monolithic synthesis (independent periods), so the two estimates of
        sigma^2_N must agree within the estimator's own scatter, and both must
        match the Eq. 11 closed form.
        """
        psd = PhaseNoisePSD(b_thermal_hz=276.04, b_flicker_hz2=0.0)
        n_periods = 1_000_000
        sweep = [1, 2, 5, 10, 50, 200, 1000]
        ensemble = BatchedOscillatorEnsemble(F0, psd, batch_size=1, seed=31)
        streamed = streaming_accumulated_variance_curves(
            ensemble, n_periods, chunk_periods=125_000, n_sweep=sweep
        )[0]
        monolithic = accumulated_variance_curve(
            BatchedOscillatorEnsemble(F0, psd, batch_size=1, seed=32).jitter(
                n_periods
            )[0],
            F0,
            n_sweep=sweep,
        )
        np.testing.assert_array_equal(streamed.n_values, monolithic.n_values)
        np.testing.assert_allclose(
            streamed.sigma2_values_s2, monolithic.sigma2_values_s2, rtol=0.08
        )
        expected = np.array(
            [sigma2_n_closed_form(psd, F0, n) for n in streamed.n_values]
        )
        np.testing.assert_allclose(streamed.sigma2_values_s2, expected, rtol=0.08)

    @pytest.mark.slow
    def test_mixed_psd_streaming_fit_recovers_coefficients(self):
        """A chunked mixed-noise campaign recovers b_th (and b_fl's scale)."""
        psd = paper_phase_noise_psd()
        ensemble = BatchedOscillatorEnsemble(F0, psd, batch_size=2, seed=8)
        curves = streaming_accumulated_variance_curves(
            ensemble, 400_000, chunk_periods=100_000
        )
        for curve in curves:
            fit = fit_sigma2_n_curve(curve)
            assert fit.b_thermal_hz == pytest.approx(psd.b_thermal_hz, rel=0.25)

    def test_chunk_too_short_for_sweep_rejected(self):
        psd = paper_phase_noise_psd()
        ensemble = BatchedOscillatorEnsemble(F0, psd, batch_size=1, seed=1)
        with pytest.raises(ValueError):
            streaming_accumulated_variance_curves(
                ensemble, 100_000, chunk_periods=256, n_sweep=[1, 10, 1000]
            )

    def test_default_sweep_capped_by_chunk(self):
        psd = PhaseNoisePSD(b_thermal_hz=276.04, b_flicker_hz2=0.0)
        ensemble = BatchedOscillatorEnsemble(F0, psd, batch_size=1, seed=2)
        curves = streaming_accumulated_variance_curves(
            ensemble, 100_000, chunk_periods=4096
        )
        assert max(curves[0].n_values) <= 4096 // 4

    def test_campaign_chunked_equals_campaign_streaming_path(self):
        """batched_sigma2_n_campaign(chunk_periods=...) routes to streaming."""
        from repro.engine.campaign import batched_sigma2_n_campaign

        psd = PhaseNoisePSD(b_thermal_hz=276.04, b_flicker_hz2=0.0)
        sweep = [1, 2, 5, 10]
        result = batched_sigma2_n_campaign(
            BatchedOscillatorEnsemble(F0, psd, batch_size=2, seed=6),
            200_000,
            n_sweep=sweep,
            chunk_periods=50_000,
        )
        reference = batched_sigma2_n_campaign(
            BatchedOscillatorEnsemble(F0, psd, batch_size=2, seed=6),
            200_000,
            n_sweep=sweep,
        )
        np.testing.assert_array_equal(result.n_values, reference.n_values)
        from repro.engine.rng import default_rng_contract

        if default_rng_contract() == "spawn":
            # Same seed and thermal-only noise: chunked generation consumes
            # the stateful streams identically, so the estimates agree to fp
            # accuracy.
            np.testing.assert_allclose(
                result.sigma2_s2, reference.sigma2_s2, rtol=1e-9
            )
            assert result.table()["b_thermal_hz"] == pytest.approx(
                reference.table()["b_thermal_hz"], rel=1e-6
            )
        else:
            # Under the index-keyed philox contract every draw call is its
            # own block, so chunked and monolithic runs see different (but
            # individually reproducible) variates: the estimates agree only
            # statistically.  Chunk invariance under philox is pinned where
            # the chunking itself is part of the pinned computation (fixed
            # synthesis blocks; see tests/property/test_philox_contract.py).
            np.testing.assert_allclose(
                result.sigma2_s2, reference.sigma2_s2, rtol=0.1
            )
            assert result.table()["b_thermal_hz"] == pytest.approx(
                reference.table()["b_thermal_hz"], rel=0.05
            )


class TestBitStreamChunkInvariance:
    """stream_bits / generate_bits_exact: the raw bit stream must not depend
    on how it is chunked — the generators stream on a fixed synthesis-block
    grid, so any chunking (including chunks that split a divider period
    across synthesis blocks) yields identical bits."""

    @staticmethod
    def _trng(divider: int, seed: int = 17):
        from repro.trng.ero_trng import EROTRNG, EROTRNGConfiguration

        configuration = EROTRNGConfiguration(
            f0_hz=F0,
            oscillator_psd=PhaseNoisePSD(b_thermal_hz=276.04, b_flicker_hz2=5.42),
            divider=divider,
            frequency_mismatch=1e-3,
        )
        return EROTRNG(configuration, rng=np.random.default_rng(seed))

    @pytest.mark.parametrize("divider", [1, 3, 96])
    @pytest.mark.parametrize("chunk_bits", [1, 7, 64, 1000])
    def test_generate_bits_exact_chunk_invariant(self, divider, chunk_bits):
        """Identical bit streams for any chunk size (odd chunks split the
        divider grid against the synthesis-block grid)."""
        from repro.engine.streaming import generate_bits_exact

        reference = generate_bits_exact(self._trng(divider), 500, chunk_bits=500)
        chunked = generate_bits_exact(
            self._trng(divider), 500, chunk_bits=chunk_bits
        )
        np.testing.assert_array_equal(reference, chunked)

    def test_stream_bits_concatenation_equals_one_shot_generate(self):
        from repro.engine.streaming import stream_bits

        reference = self._trng(33).generate(777)
        chunks = list(stream_bits(self._trng(33), 777, chunk_bits=50))
        np.testing.assert_array_equal(reference, np.concatenate(chunks))

    def test_batched_trng_stream_matches_scalar_rows(self):
        """Chunked batched generation: (B, k) blocks, rows == scalar streams."""
        from repro.engine.batch import spawn_generators
        from repro.engine.bits import BatchedEROTRNG
        from repro.engine.streaming import generate_bits_exact
        from repro.trng.ero_trng import EROTRNG, EROTRNGConfiguration

        configuration = EROTRNGConfiguration(
            f0_hz=F0,
            oscillator_psd=PhaseNoisePSD(b_thermal_hz=276.04, b_flicker_hz2=0.0),
            divider=5,
            frequency_mismatch=1e-3,
        )
        batched = BatchedEROTRNG(configuration, batch_size=3, seed=23)
        block = generate_bits_exact(batched, 400, chunk_bits=128)
        assert block.shape == (3, 400)
        children = spawn_generators(23, 3)
        for row in range(3):
            scalar = EROTRNG(configuration, rng=children[row])
            np.testing.assert_array_equal(
                block[row], generate_bits_exact(scalar, 400, chunk_bits=128)
            )

    def test_sampler_state_survives_interleaved_chunk_sizes(self):
        """Ragged chunk schedules agree with each other, not just with 1 call."""
        schedule_a = [5, 1, 94, 250, 150]
        schedule_b = [100, 100, 100, 100, 100]
        trng_a, trng_b = self._trng(7), self._trng(7)
        bits_a = np.concatenate([trng_a.generate(k) for k in schedule_a])
        bits_b = np.concatenate([trng_b.generate(k) for k in schedule_b])
        np.testing.assert_array_equal(bits_a, bits_b)


class TestEstimatorStateAndRowMerge:
    """export_state / from_state round-trips and disjoint row-shard merging."""

    def _fed_estimator(self, rows: np.ndarray, chunks=(300, 200, 500)):
        estimator = StreamingSigma2NEstimator(
            [2, 8, 32], batch_size=rows.shape[0]
        )
        start = 0
        for size in chunks:
            estimator.update(rows[:, start : start + size])
            start += size
        return estimator

    def test_state_round_trip_preserves_curves_and_updates(self):
        rng = np.random.default_rng(41)
        record = rng.normal(0.0, 1e-12, size=(2, 1400))
        direct = self._fed_estimator(record)
        restored = StreamingSigma2NEstimator.from_state(
            self._fed_estimator(record).export_state()
        )
        # Continuing to update after restoration must match the original.
        extra = rng.normal(0.0, 1e-12, size=(2, 700))
        direct.update(extra)
        restored.update(extra)
        for a, b in zip(direct.curves(F0), restored.curves(F0)):
            np.testing.assert_array_equal(a.sigma2_values_s2, b.sigma2_values_s2)
            np.testing.assert_array_equal(a.realization_counts, b.realization_counts)

    def test_merge_rows_equals_stacked_estimation(self):
        rng = np.random.default_rng(42)
        record = rng.normal(0.0, 1e-12, size=(5, 1000))
        stacked = self._fed_estimator(record)
        shards = [
            self._fed_estimator(record[0:2]),
            self._fed_estimator(record[2:3]),
            self._fed_estimator(record[3:5]),
        ]
        merged = StreamingSigma2NEstimator.merge_rows(shards)
        assert merged.batch_size == 5
        for a, b in zip(stacked.curves(F0), merged.curves(F0)):
            np.testing.assert_array_equal(a.sigma2_values_s2, b.sigma2_values_s2)
        # The merged estimator keeps streaming: boundary windows included.
        extra = rng.normal(0.0, 1e-12, size=(5, 400))
        stacked.update(extra)
        merged.update(extra)
        for a, b in zip(stacked.curves(F0), merged.curves(F0)):
            np.testing.assert_array_equal(a.sigma2_values_s2, b.sigma2_values_s2)

    def test_merge_rows_rejects_mismatched_timelines(self):
        rng = np.random.default_rng(43)
        record = rng.normal(0.0, 1e-12, size=(2, 900))
        complete = self._fed_estimator(record, chunks=(900,))
        shorter = self._fed_estimator(record[:, :600], chunks=(600,))
        with pytest.raises(ValueError, match="different record lengths"):
            StreamingSigma2NEstimator.merge_rows([complete, shorter])
        other_sweep = StreamingSigma2NEstimator([2, 8], batch_size=2)
        other_sweep.update(record)
        with pytest.raises(ValueError, match="N sweep"):
            StreamingSigma2NEstimator.merge_rows([complete, other_sweep])
        with pytest.raises(ValueError, match="at least one"):
            StreamingSigma2NEstimator.merge_rows([])
