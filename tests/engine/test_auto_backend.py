"""AutoBackend: cost-model selection, spec plumbing, backend-aware sharding.

Selection never changes output (both candidates are bitwise-equal by the
backend contract, re-checked here with the threshold forced both ways); what
these tests pin is *which* executor the cost model picks and how the
distributed planner sizes shards around it.  Worker counts are always
injected explicitly — the host running the suite may have any core count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.backends import (
    AUTO_THRESHOLD_ENV_VAR,
    AutoBackend,
    NumpyBackend,
    ThreadedBackend,
    parse_backend_spec,
    resolve_backend,
    validate_backend_spec,
)
from repro.engine.backends.auto import DEFAULT_AUTO_THRESHOLD
from repro.engine.batch import spawn_generators
from repro.engine.distributed import plan_shards_for_backend


def _run(backend, batch: int, n: int, seed: int = 5):
    sigma = np.full(batch, 1.2e-12)
    h_minus1 = np.full(batch, 3.1e-22)
    return backend.synthesize(
        n, spawn_generators(seed, batch), sigma, h_minus1, "spectral"
    )


class TestSelection:
    def test_small_workload_picks_reference(self):
        backend = AutoBackend(max_workers=4, threshold=1000)
        assert isinstance(backend.select(4, 100), NumpyBackend)

    def test_large_workload_picks_threaded(self):
        backend = AutoBackend(max_workers=4, threshold=1000)
        selected = backend.select(4, 250)
        assert isinstance(selected, ThreadedBackend)
        assert selected.max_workers == 4

    def test_single_row_batches_never_thread(self):
        backend = AutoBackend(max_workers=4, threshold=0)
        assert isinstance(backend.select(1, 10**9), NumpyBackend)

    def test_single_worker_never_threads(self):
        backend = AutoBackend(max_workers=1, threshold=0)
        assert isinstance(backend.select(64, 10**9), NumpyBackend)

    def test_threshold_boundary_is_inclusive(self):
        backend = AutoBackend(max_workers=2, threshold=1000)
        assert isinstance(backend.select(10, 100), ThreadedBackend)
        assert isinstance(backend.select(10, 99), NumpyBackend)

    def test_thread_pool_is_lazy(self):
        backend = AutoBackend(max_workers=4, threshold=10**9)
        _run(backend, 2, 64)
        assert backend._threaded is None

    def test_output_identical_whichever_side_wins(self):
        reference = _run(NumpyBackend(), 4, 128)
        forced_numpy = _run(AutoBackend(max_workers=2, threshold=10**9), 4, 128)
        forced_threaded = _run(AutoBackend(max_workers=2, threshold=0), 4, 128)
        for got in (forced_numpy, forced_threaded):
            np.testing.assert_array_equal(reference[0], got[0])
            np.testing.assert_array_equal(reference[1], got[1])


class TestConfiguration:
    def test_env_threshold_override(self, monkeypatch):
        monkeypatch.setenv(AUTO_THRESHOLD_ENV_VAR, "123")
        assert AutoBackend(max_workers=2).threshold == 123

    def test_env_threshold_invalid(self, monkeypatch):
        monkeypatch.setenv(AUTO_THRESHOLD_ENV_VAR, "lots")
        with pytest.raises(ValueError):
            AutoBackend(max_workers=2)

    def test_default_threshold(self, monkeypatch):
        monkeypatch.delenv(AUTO_THRESHOLD_ENV_VAR, raising=False)
        assert AutoBackend(max_workers=2).threshold == DEFAULT_AUTO_THRESHOLD

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(AUTO_THRESHOLD_ENV_VAR, "123")
        assert AutoBackend(max_workers=2, threshold=7).threshold == 7

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AutoBackend(max_workers=0)
        with pytest.raises(ValueError):
            AutoBackend(max_workers=2, threshold=-1)


class TestSpecPlumbing:
    def test_parse_auto_specs(self):
        default = parse_backend_spec("auto")
        assert isinstance(default, AutoBackend)
        assert default.spec == "auto"
        explicit = parse_backend_spec("auto:3")
        assert explicit.max_workers == 3
        assert explicit.spec == "auto:3"

    @pytest.mark.parametrize("spec", ["auto:x", "auto:0"])
    def test_invalid_auto_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_backend_spec(spec)

    def test_validate_and_resolve(self, monkeypatch):
        assert validate_backend_spec("auto:2") == "auto:2"
        monkeypatch.setenv("REPRO_BACKEND", "auto:2")
        resolved = resolve_backend(None)
        assert isinstance(resolved, AutoBackend)
        assert resolved.max_workers == 2


class TestShardSizing:
    def test_min_shard_rows_by_backend(self):
        assert NumpyBackend().min_shard_rows() == 1
        assert ThreadedBackend(max_workers=4).min_shard_rows() == 4
        auto = AutoBackend(max_workers=4, threshold=1024)
        assert auto.min_shard_rows(1024) == 4  # 4 x 1024 crosses the threshold
        assert auto.min_shard_rows(16) == 1  # cost model would pick numpy
        assert auto.min_shard_rows(None) == 1
        assert AutoBackend(max_workers=1, threshold=0).min_shard_rows(1024) == 1

    def test_plan_clamped_for_threaded_backend(self):
        plan = plan_shards_for_backend(16, 16, backend="threaded:4")
        assert plan.n_shards == 4
        assert all(shard.size == 4 for shard in plan)

    def test_plan_falls_back_to_single_fat_shard(self):
        plan = plan_shards_for_backend(2, 8, backend="threaded:4")
        assert plan.n_shards == 1
        assert plan.shards[0].size == 2

    def test_sequential_backend_unclamped(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert plan_shards_for_backend(16, 16, backend="numpy").n_shards == 16
        assert plan_shards_for_backend(16, 16).n_shards == 16

    def test_auto_backend_clamps_only_above_threshold(self):
        backend = AutoBackend(max_workers=4, threshold=1024)
        fat = plan_shards_for_backend(16, 16, backend=backend, n_periods=1024)
        thin = plan_shards_for_backend(16, 16, backend=backend, n_periods=16)
        assert fat.n_shards == 4
        assert thin.n_shards == 16
