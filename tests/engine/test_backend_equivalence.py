"""Cross-backend equivalence matrix: every backend == the NumPy reference.

The tentpole contract (ISSUE 5): a synthesis backend is only trustworthy if
its output is **bit-for-bit identical** to :class:`NumpyBackend` for every
workload shape.  This matrix drives backend {numpy, threaded:1, threaded:4}
x flicker_method {spectral, non-spectral} x batch size {1, 3, 64} x API
{decompose, periods, jitter, stream_bits chunking}, including zero-sigma and
zero-h_-1 rows whose draws must be skipped identically, plus the resolver /
spec / validation surface around the backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.backends import (
    BACKEND_ENV_VAR,
    NumpyBackend,
    SynthesisBackend,
    ThreadedBackend,
    parse_backend_spec,
    resolve_backend,
    validate_backend_spec,
)
from repro.engine.batch import BatchedJitterSynthesizer, BatchedOscillatorEnsemble
from repro.engine.bits import BatchedEROTRNG
from repro.paper import PAPER_F0_HZ
from repro.phase.psd import PhaseNoisePSD
from repro.trng.ero_trng import EROTRNGConfiguration

F0 = PAPER_F0_HZ

#: Candidate backends, every one required to match the reference bitwise.
#: ``auto:4`` exercises the cost-model dispatcher (whichever side it picks
#: must still be bit-for-bit the reference).  ``philox:*`` prove execution
#: is stream-agnostic: the philox-tier executor on the same streams as the
#: reference (an engine ``backend=`` argument selects execution only; the
#: stream contract is pinned separately — see tests/engine/
#: test_rng_contract.py and tests/property/test_philox_contract.py).
BACKENDS = ("numpy", "threaded:1", "threaded:4", "auto:4", "philox:1", "philox:4")

#: The spectral FFT fast path and the non-spectral per-row fallback.
FLICKER_METHODS_UNDER_TEST = ("spectral", "ar")

BATCH_SIZES = (1, 3, 64)


def _coefficients(batch: int):
    """Per-row (b_th, b_fl) including zero-sigma / zero-h / silent rows.

    The zero rows are the draw-skipping edge of the backend contract: a row
    whose coefficient is zero must not touch its generator for that
    component, or every later draw of that row shifts.
    """
    if batch == 1:
        return np.array([276.04]), np.array([5.42])
    pattern = [
        (276.04, 5.42),  # mixed: fused thermal+flicker draw
        (276.04, 0.0),  # thermal-only: flicker draw skipped
        (0.0, 5.42),  # flicker-only: thermal draw skipped
        (0.0, 0.0),  # silent row: no draw at all
        (100.0, 1.0),  # heterogeneous mixed
    ]
    rows = [pattern[index % len(pattern)] for index in range(batch)]
    b_thermal = np.array([row[0] for row in rows])
    b_flicker = np.array([row[1] for row in rows])
    return b_thermal, b_flicker


def _ensemble(batch: int, method: str, backend, seed: int = 20140324):
    b_thermal, b_flicker = _coefficients(batch)
    return BatchedOscillatorEnsemble.from_phase_noise(
        F0,
        b_thermal,
        b_flicker,
        batch_size=batch,
        seed=seed,
        flicker_method=method,
        backend=backend,
    )


@pytest.mark.parametrize("batch", BATCH_SIZES)
@pytest.mark.parametrize("method", FLICKER_METHODS_UNDER_TEST)
@pytest.mark.parametrize("backend", BACKENDS)
class TestSynthesisMatrix:
    """backend x flicker_method x B, over the synthesis APIs."""

    def test_decompose_periods_jitter_match_reference(self, backend, method, batch):
        """All three synthesis APIs, called in sequence on live streams.

        Both ensembles advance their per-row streams identically call after
        call, so comparing successive API calls also locks the *stream
        consumption* equality, not just one draw.
        """
        n_periods = 96 if method != "spectral" else 257
        reference = _ensemble(batch, method, NumpyBackend())
        candidate = _ensemble(batch, method, backend)
        ref_parts = reference.decompose(n_periods)
        cand_parts = candidate.decompose(n_periods)
        np.testing.assert_array_equal(ref_parts.periods_s, cand_parts.periods_s)
        np.testing.assert_array_equal(
            ref_parts.thermal_jitter_s, cand_parts.thermal_jitter_s
        )
        np.testing.assert_array_equal(
            ref_parts.flicker_jitter_s, cand_parts.flicker_jitter_s
        )
        np.testing.assert_array_equal(
            reference.periods(n_periods), candidate.periods(n_periods)
        )
        np.testing.assert_array_equal(
            reference.jitter(n_periods), candidate.jitter(n_periods)
        )

    def test_zero_rows_skip_draws_identically(self, backend, method, batch):
        """Zero-coefficient rows leave their generators untouched."""
        b_thermal, b_flicker = _coefficients(batch)
        ensemble = _ensemble(batch, method, backend, seed=7)
        ensemble.periods(64)
        silent = (b_thermal == 0.0) & (b_flicker == 0.0)
        fresh = BatchedOscillatorEnsemble.from_phase_noise(
            F0, b_thermal, b_flicker, batch_size=batch, seed=7
        )
        for row in np.flatnonzero(silent):
            # A generator never drawn from produces the same variates as a
            # freshly spawned one.
            np.testing.assert_array_equal(
                ensemble.rngs[row].standard_normal(8),
                fresh.rngs[row].standard_normal(8),
            )


@pytest.mark.parametrize("backend", BACKENDS)
class TestBitStreamMatrix:
    """The stream_bits / chunked-generation API of the matrix."""

    CONFIGURATION = EROTRNGConfiguration(
        f0_hz=F0,
        oscillator_psd=PhaseNoisePSD(b_thermal_hz=276.04, b_flicker_hz2=5.42),
        divider=8,
        frequency_mismatch=1e-3,
    )

    def test_chunked_bits_match_monolithic_reference(self, backend):
        """Chunked candidate bits == one-shot reference bits, bit for bit."""
        reference = BatchedEROTRNG(
            self.CONFIGURATION, batch_size=3, seed=42, backend=NumpyBackend()
        )
        candidate = BatchedEROTRNG(
            self.CONFIGURATION, batch_size=3, seed=42, backend=backend
        )
        whole = reference.generate_raw(300).bits
        parts = [candidate.generate_raw(k).bits for k in (1, 7, 100, 192)]
        np.testing.assert_array_equal(whole, np.concatenate(parts, axis=1))

    def test_generate_exact_matches_reference(self, backend):
        reference = BatchedEROTRNG(self.CONFIGURATION, batch_size=2, seed=9)
        candidate = BatchedEROTRNG(
            self.CONFIGURATION, batch_size=2, seed=9, backend=backend
        )
        np.testing.assert_array_equal(
            reference.generate_exact(200, chunk_bits=64),
            candidate.generate_exact(200, chunk_bits=64),
        )


class TestBackendResolution:
    def test_parse_specs(self):
        assert isinstance(parse_backend_spec("numpy"), NumpyBackend)
        threaded = parse_backend_spec("threaded:3")
        assert isinstance(threaded, ThreadedBackend)
        assert threaded.max_workers == 3
        assert threaded.spec == "threaded:3"
        default = parse_backend_spec("threaded")
        assert default.max_workers >= 1

    @pytest.mark.parametrize("spec", ["gpu", "numpy:2", "threaded:x", "threaded:0", ""])
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_backend_spec(spec)

    def test_resolve_passthrough_and_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        backend = ThreadedBackend(max_workers=2)
        assert resolve_backend(backend) is backend
        assert isinstance(resolve_backend(None), NumpyBackend)
        assert isinstance(resolve_backend("numpy"), NumpyBackend)
        with pytest.raises(TypeError):
            resolve_backend(3)

    def test_environment_default_hook(self, monkeypatch):
        """REPRO_BACKEND switches the process default — the CI lever."""
        monkeypatch.setenv(BACKEND_ENV_VAR, "threaded:2")
        resolved = resolve_backend(None)
        assert isinstance(resolved, ThreadedBackend)
        assert resolved.max_workers == 2
        # Explicit selection always beats the environment.
        assert isinstance(resolve_backend("numpy"), NumpyBackend)
        monkeypatch.setenv(BACKEND_ENV_VAR, "")
        assert isinstance(resolve_backend(None), NumpyBackend)

    def test_environment_default_reaches_the_engine(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "threaded:2")
        psd = PhaseNoisePSD(b_thermal_hz=276.04, b_flicker_hz2=0.0)
        ensemble = BatchedOscillatorEnsemble(F0, psd, batch_size=2, seed=1)
        assert isinstance(ensemble.backend, ThreadedBackend)

    def test_validate_backend_spec_for_serialization(self):
        assert validate_backend_spec(None) is None
        assert validate_backend_spec("threaded:4") == "threaded:4"
        with pytest.raises(ValueError):
            validate_backend_spec("bogus")

    def test_use_backend_rebinds_without_changing_output(self):
        psd = PhaseNoisePSD(b_thermal_hz=276.04, b_flicker_hz2=5.42)
        reference = BatchedOscillatorEnsemble(F0, psd, batch_size=3, seed=5)
        switching = BatchedOscillatorEnsemble(F0, psd, batch_size=3, seed=5)
        first = reference.periods(64)
        np.testing.assert_array_equal(first, switching.periods(64))
        switching.use_backend("threaded:2")
        assert isinstance(switching.backend, ThreadedBackend)
        # Mid-stream backend swap: the continuation is still bit-for-bit.
        np.testing.assert_array_equal(reference.periods(64), switching.periods(64))

    def test_trng_use_backend_rebinds_both_ensembles(self):
        trng = BatchedEROTRNG(TestBitStreamMatrix.CONFIGURATION, batch_size=2, seed=3)
        trng.use_backend("threaded:2")
        assert isinstance(trng.sampled_ensemble.backend, ThreadedBackend)
        assert isinstance(trng.sampling_ensemble.backend, ThreadedBackend)
        # One resolution per call: both ensembles share one instance (and
        # therefore one thread pool), even from a spec string.
        assert trng.sampled_ensemble.backend is trng.sampling_ensemble.backend

    def test_trng_resolves_spec_string_to_one_shared_backend(self, monkeypatch):
        """Regression: a spec string (or the env default) must not create one
        thread pool per ring ensemble."""
        trng = BatchedEROTRNG(
            TestBitStreamMatrix.CONFIGURATION,
            batch_size=2,
            seed=3,
            backend="threaded:2",
        )
        assert trng.sampled_ensemble.backend is trng.sampling_ensemble.backend
        monkeypatch.setenv(BACKEND_ENV_VAR, "threaded:2")
        via_env = BatchedEROTRNG(
            TestBitStreamMatrix.CONFIGURATION, batch_size=2, seed=3
        )
        assert via_env.sampled_ensemble.backend is via_env.sampling_ensemble.backend

    def test_threaded_pool_is_created_once_under_concurrency(self):
        """Regression: racing first-use must not leak a second thread pool."""
        import threading

        backend = ThreadedBackend(max_workers=2)
        pools = []
        barrier = threading.Barrier(4)

        def grab() -> None:
            barrier.wait()
            pools.append(backend._executor())

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(pool is pools[0] for pool in pools)

    def test_campaign_backend_is_scoped_to_the_call(self):
        """backend= on a campaign must not leak onto the caller's ensemble."""
        from repro.engine.campaign import batched_sigma2_n_campaign

        psd = PhaseNoisePSD(b_thermal_hz=276.04, b_flicker_hz2=0.0)
        ensemble = BatchedOscillatorEnsemble(F0, psd, batch_size=2, seed=3)
        original = ensemble.backend
        batched_sigma2_n_campaign(ensemble, 2048, backend="threaded:2")
        assert ensemble.backend is original

    def test_sampler_backend_applies_to_both_sources(self):
        """BatchedDFlipFlopSampler(backend=...) re-binds both clock sources."""
        from repro.engine.bits import BatchedDFlipFlopSampler

        psd = PhaseNoisePSD(b_thermal_hz=276.04, b_flicker_hz2=5.42)
        fast = BatchedOscillatorEnsemble(F0 * 1.0005, psd, batch_size=2, seed=0)
        slow = BatchedOscillatorEnsemble(F0 * 0.9995, psd, batch_size=2, seed=1)
        sampler = BatchedDFlipFlopSampler(fast, slow, divider=8, backend="threaded:2")
        assert isinstance(fast.backend, ThreadedBackend)
        assert isinstance(slow.backend, ThreadedBackend)
        reference_fast = BatchedOscillatorEnsemble(
            F0 * 1.0005, psd, batch_size=2, seed=0
        )
        reference_slow = BatchedOscillatorEnsemble(
            F0 * 0.9995, psd, batch_size=2, seed=1
        )
        reference = BatchedDFlipFlopSampler(reference_fast, reference_slow, divider=8)
        np.testing.assert_array_equal(
            sampler.sample(100).bits, reference.sample(100).bits
        )

    def test_backend_is_abstract(self):
        with pytest.raises(TypeError):
            SynthesisBackend()

    def test_repr_shows_spec(self):
        assert "threaded:2" in repr(ThreadedBackend(2))
        assert "numpy" in repr(NumpyBackend())


class TestFlickerMethodValidation:
    """Regression (ISSUE 5 satellite): unknown methods fail at construction,
    not deep inside the first ``generate_pink_noise_batch`` call."""

    def test_synthesizer_rejects_unknown_method_eagerly(self):
        psd = PhaseNoisePSD(b_thermal_hz=276.04, b_flicker_hz2=5.42)
        with pytest.raises(ValueError, match="spectral, ar, hosking"):
            BatchedJitterSynthesizer(F0, psd, batch_size=2, flicker_method="fft")

    def test_ensemble_and_trng_inherit_the_validation(self):
        psd = PhaseNoisePSD(b_thermal_hz=276.04, b_flicker_hz2=5.42)
        with pytest.raises(ValueError, match="unknown flicker_method"):
            BatchedOscillatorEnsemble(F0, psd, batch_size=2, flicker_method="pink")
        with pytest.raises(ValueError, match="unknown flicker_method"):
            BatchedEROTRNG(
                TestBitStreamMatrix.CONFIGURATION,
                batch_size=1,
                flicker_method="typo",
            )

    def test_known_methods_still_accepted(self):
        psd = PhaseNoisePSD(b_thermal_hz=276.04, b_flicker_hz2=5.42)
        for method in ("spectral", "ar", "hosking"):
            BatchedJitterSynthesizer(F0, psd, batch_size=1, flicker_method=method)
