"""Fabric coordinator tests: bitwise invariance over localhost worker fleets.

These spawn real ``python -m repro.worker`` processes and run campaigns
through :class:`FabricCoordinator`, asserting the merged output is
bit-for-bit identical to the single-host run — the fabric form of the
shard-invariance contract.  Fault paths live in ``test_fabric_faults.py``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.campaigns import main as campaigns_main
from repro.engine.distributed import (
    BitCampaignSpec,
    FabricCoordinator,
    FabricTelemetry,
    Sigma2NCampaignSpec,
    parse_endpoint,
    run_campaign,
)


@pytest.fixture(scope="module")
def fabric():
    coordinator = FabricCoordinator(spawn=2, heartbeat_interval=0.5)
    with coordinator:
        yield coordinator


class TestFabricBitwiseInvariance:
    def test_sigma2n_campaign_matches_single_host(self, fabric):
        spec = Sigma2NCampaignSpec(batch_size=8, n_periods=4096, seed=77)
        reference = run_campaign(spec, n_shards=3)
        result = run_campaign(spec, executor=fabric, n_shards=3)
        np.testing.assert_array_equal(result.sigma2_s2, reference.sigma2_s2)
        for name, column in reference.table().items():
            np.testing.assert_array_equal(result.table()[name], column)

    def test_bit_campaign_matches_single_host(self, fabric):
        spec = BitCampaignSpec(
            batch_size=4, n_bits=512, dividers=(4, 8), seed=5
        )
        reference = run_campaign(spec, n_shards=2)
        result = run_campaign(spec, executor=fabric, n_shards=2)
        for name, column in reference.table().items():
            np.testing.assert_array_equal(result.table()[name], column)

    def test_streaming_chunks_ship_estimator_state(self, fabric):
        spec = Sigma2NCampaignSpec(
            batch_size=4, n_periods=8192, chunk_periods=2048, seed=3
        )
        reference = run_campaign(spec, n_shards=2)
        result = run_campaign(spec, executor=fabric, n_shards=2)
        np.testing.assert_array_equal(result.sigma2_s2, reference.sigma2_s2)

    def test_telemetry_records_every_shard(self, fabric):
        fabric.telemetry = FabricTelemetry()  # fresh log for this run
        spec = Sigma2NCampaignSpec(batch_size=6, n_periods=2048, seed=11)
        run_campaign(spec, executor=fabric, n_shards=3)
        summary = fabric.telemetry.summary()
        assert sorted(summary["shards"]) == ["0", "1", "2"]
        assert summary["reassignments"] == 0
        assert summary["worker_failures"] == []
        for record in summary["shards"].values():
            assert record["attempts"] == 1
            assert record["seconds"] >= 0.0


class TestFabricValidation:
    def test_run_only_accepts_campaign_shards(self, fabric):
        with pytest.raises(ValueError, match="only executes campaign shards"):
            list(fabric.run(abs, [(None, None)]))

    def test_zero_workers_is_refused(self):
        with pytest.raises(ValueError, match="at least one worker"):
            FabricCoordinator()

    def test_heartbeat_timeout_must_exceed_interval(self):
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            FabricCoordinator(
                spawn=1, heartbeat_interval=1.0, heartbeat_timeout=0.5
            )

    @pytest.mark.parametrize(
        "endpoint", ["nohost", "host:notaport", ":8765", "host:"]
    )
    def test_bad_endpoints_are_rejected(self, endpoint):
        with pytest.raises(ValueError):
            parse_endpoint(endpoint)

    def test_parse_endpoint_round_trip(self):
        assert parse_endpoint("127.0.0.1:8765") == ("127.0.0.1", 8765)


class TestCampaignsCLIFabric:
    def test_spawn_workers_with_verify_and_json(self, tmp_path, capsys):
        out = tmp_path / "fabric.json"
        arguments = ["sigma2n", "--batch", "6", "--n-periods", "2048"]
        arguments += ["--shards", "3", "--spawn-workers", "2", "--seed", "7"]
        arguments += ["--verify", "--json", str(out)]
        assert campaigns_main(arguments) == 0
        captured = capsys.readouterr()
        assert "bit-for-bit identical" in captured.out
        assert "fabric worker(s)" in captured.out
        assert "[fabric] shard" in captured.err  # live progress lines
        payload = json.loads(out.read_text())
        assert payload["verified"] is True
        assert payload["substrate"] == "fabric"
        assert payload["workers"] == 2
        assert len(payload["fabric"]["shards"]) == 3
        assert payload["fabric"]["reassignments"] == 0

    def test_local_workers_cannot_mix_with_fabric_flags(self, capsys):
        arguments = ["sigma2n", "--batch", "4", "--workers", "2"]
        arguments += ["--spawn-workers", "2"]
        assert campaigns_main(arguments) == 2
        assert "cannot be combined" in capsys.readouterr().err
