"""Single-writer checkpoint lease tests: concurrent coordinators must not
interleave manifest writes.  A second live coordinator is refused with
:class:`CheckpointLeaseError`; stale leases (dead owner) are taken over."""

from __future__ import annotations

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.engine.distributed import (
    CampaignCheckpoint,
    CheckpointLeaseError,
    Sigma2NCampaignSpec,
    plan_shards,
    run_campaign,
    run_shard,
)


@pytest.fixture()
def spec():
    return Sigma2NCampaignSpec(batch_size=4, n_periods=2048, seed=9)


@pytest.fixture()
def plan(spec):
    return plan_shards(spec.batch_size, 2)


def _write_lock(tmp_path, pid: int) -> None:
    (tmp_path / "coordinator.lock").write_text(
        json.dumps({"token": "someone-else", "pid": pid})
    )


def test_live_foreign_coordinator_is_refused(spec, plan, tmp_path):
    """A lock held by a live *other* process blocks initialization with a
    clear error instead of silently corrupting the manifest."""
    other = subprocess.Popen(
        [sys.executable, "-c", "import time; time.sleep(60)"]
    )
    try:
        _write_lock(tmp_path, other.pid)
        checkpoint = CampaignCheckpoint(tmp_path)
        with pytest.raises(CheckpointLeaseError, match="live coordinator"):
            checkpoint.initialize(spec, plan, resume=False)
    finally:
        other.kill()
        other.wait()


def test_dead_owner_lease_is_taken_over(spec, plan, tmp_path):
    """A lease whose owner process is gone is stale: resume takes it over."""
    dead = subprocess.Popen([sys.executable, "-c", "pass"])
    dead.wait()
    _write_lock(tmp_path, dead.pid)
    checkpoint = CampaignCheckpoint(tmp_path)
    completed = checkpoint.initialize(spec, plan, resume=False)
    assert completed == set()
    lock = json.loads((tmp_path / "coordinator.lock").read_text())
    assert lock["token"] != "someone-else"


def test_superseded_coordinator_cannot_write(spec, plan, tmp_path):
    """Same-process takeover (restart in one process) invalidates the first
    coordinator's lease: its next save_partial is refused."""
    first = CampaignCheckpoint(tmp_path)
    first.initialize(spec, plan, resume=False)
    second = CampaignCheckpoint(tmp_path)
    second.initialize(spec, plan, resume=True)

    partial = run_shard((spec, plan.shards[0]))
    with pytest.raises(CheckpointLeaseError, match="lost the coordinator"):
        first.save_partial(0, partial)
    # The usurper writes fine, and the partial is intact on disk.
    second.save_partial(0, partial)
    for name, values in second.load_partial(0).items():
        np.testing.assert_array_equal(values, partial[name])


def test_released_lease_admits_a_successor(spec, plan, tmp_path):
    first = CampaignCheckpoint(tmp_path)
    first.initialize(spec, plan, resume=False)
    first.release()
    assert not (tmp_path / "coordinator.lock").exists()
    second = CampaignCheckpoint(tmp_path)
    second.initialize(spec, plan, resume=True)
    second.save_partial(0, run_shard((spec, plan.shards[0])))


def test_run_campaign_releases_the_lease(spec, tmp_path):
    run_campaign(spec, n_shards=2, checkpoint_dir=tmp_path)
    assert not (tmp_path / "coordinator.lock").exists()
    # ... so an immediate resume in the same process works.
    run_campaign(spec, n_shards=2, checkpoint_dir=tmp_path, resume=True)
    assert not (tmp_path / "coordinator.lock").exists()
