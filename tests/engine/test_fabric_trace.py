"""Cross-host trace assembly: spans from real spawned workers merge into
one campaign tree on the coordinator.

This is the distributed half of the tracing contract (the in-process half
lives in ``tests/obs/test_trace.py``): trace context rides the shard/batch
wire messages out, worker-side span records ride the reply envelopes back,
and the coordinator's tree covers every host that touched the campaign.
"""

from __future__ import annotations

import pytest

from repro.engine.distributed import FabricCoordinator, Sigma2NCampaignSpec, run_campaign
from repro.obs import HOST, SpanCollector, format_tree


@pytest.fixture(scope="module")
def fabric():
    coordinator = FabricCoordinator(spawn=2, heartbeat_interval=0.5)
    with coordinator:
        yield coordinator


def _run_traced_campaign(fabric, n_shards=4, seed=19):
    fabric.spans = SpanCollector()  # fresh tree for this run
    spec = Sigma2NCampaignSpec(batch_size=8, n_periods=2048, seed=seed)
    run_campaign(spec, executor=fabric, n_shards=n_shards)
    return fabric.trace_tree()


class TestMergedSpanTree:
    def test_tree_covers_coordinator_and_both_workers(self, fabric):
        tree = _run_traced_campaign(fabric, n_shards=4)
        assert len(tree) == 1
        root = tree[0]
        assert root["name"] == "fabric.campaign"
        assert root["host"] == HOST
        assert root["status"] == "ok"
        assert root["attributes"] == {"shards": 4, "workers": 2}

        shard_spans = root["children"]
        assert [node["name"] for node in shard_spans] == ["fabric.shard"] * 4
        assert sorted(node["attributes"]["shard"] for node in shard_spans) == [
            0, 1, 2, 3,
        ]
        worker_hosts = set()
        for shard_span in shard_spans:
            assert shard_span["host"] == HOST
            assert shard_span["trace_id"] == root["trace_id"]
            assert shard_span["parent_id"] == root["span_id"]
            # Each coordinator-side shard span contains the remote execution
            # span shipped back by the worker that ran it.
            (remote,) = shard_span["children"]
            assert remote["name"] == "worker.shard"
            assert remote["trace_id"] == root["trace_id"]
            assert remote["parent_id"] == shard_span["span_id"]
            assert remote["status"] == "ok"
            assert remote["duration_s"] <= shard_span["duration_s"]
            assert remote["host"] != HOST  # different pid = different host tag
            worker_hosts.add(remote["host"])
        # With four shards round-robined over two workers, both appear.
        assert len(worker_hosts) == 2

    def test_tree_renders_without_error(self, fabric):
        tree = _run_traced_campaign(fabric, n_shards=2, seed=23)
        rendered = format_tree(tree)
        lines = rendered.splitlines()
        assert lines[0].startswith("fabric.campaign [")
        assert any(line.lstrip().startswith("worker.shard [") for line in lines)

    def test_heartbeat_rtt_lands_in_telemetry(self):
        # Pings only fire while a shard outlasts the heartbeat interval, so
        # use a short interval and one chunky shard to guarantee samples.
        spec = Sigma2NCampaignSpec(batch_size=16, n_periods=65536, seed=31)
        with FabricCoordinator(
            spawn=1, heartbeat_interval=0.05, heartbeat_timeout=30.0
        ) as coordinator:
            run_campaign(spec, executor=coordinator, n_shards=1)
            summary = coordinator.telemetry.summary()
        rtt = summary["heartbeat_rtt_seconds"]
        assert rtt["count"] >= 1
        # Localhost round trips: non-negative and well under a second each.
        assert 0.0 <= rtt["sum"] / rtt["count"] < 1.0
