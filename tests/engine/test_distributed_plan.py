"""Shard-plan and campaign-spec tests: determinism, validation, round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.distributed import (
    BitCampaignSpec,
    Shard,
    ShardPlan,
    Sigma2NCampaignSpec,
    plan_shards,
    spec_from_json,
    spec_to_json,
)


class TestPlanShards:
    @pytest.mark.parametrize(
        "batch,shards", [(1, 1), (8, 1), (8, 8), (10, 3), (7, 2), (64, 5)]
    )
    def test_partition_tiles_the_batch(self, batch, shards):
        plan = plan_shards(batch, shards)
        covered = [row for shard in plan for row in range(shard.start, shard.stop)]
        assert covered == list(range(batch))
        sizes = [shard.size for shard in plan]
        assert max(sizes) - min(sizes) <= 1
        assert [shard.index for shard in plan] == list(range(len(plan)))

    def test_more_shards_than_rows_clamps(self):
        plan = plan_shards(3, 10)
        assert plan.n_shards == 3
        assert all(shard.size == 1 for shard in plan)

    def test_deterministic(self):
        assert plan_shards(13, 4) == plan_shards(13, 4)

    @pytest.mark.parametrize("batch,shards", [(0, 1), (4, 0), (-1, 2)])
    def test_invalid_arguments(self, batch, shards):
        with pytest.raises(ValueError):
            plan_shards(batch, shards)

    def test_plan_validation_rejects_gaps_and_bad_order(self):
        with pytest.raises(ValueError, match="tile"):
            ShardPlan(
                batch_size=4,
                shards=(Shard(0, 0, 1), Shard(1, 2, 4)),
            )
        with pytest.raises(ValueError, match="index"):
            ShardPlan(
                batch_size=4,
                shards=(Shard(1, 0, 2), Shard(0, 2, 4)),
            )
        with pytest.raises(ValueError, match="cover"):
            ShardPlan(batch_size=4, shards=(Shard(0, 0, 2),))


class TestSpecs:
    def test_sigma2n_spec_pins_fresh_entropy(self):
        spec = Sigma2NCampaignSpec(batch_size=2, n_periods=64)
        assert spec.seed is not None
        # The pinned seed makes repeated ensemble construction reproducible.
        a = spec.ensemble().jitter(32)
        b = spec.ensemble().jitter(32)
        np.testing.assert_array_equal(a, b)

    def test_row_slices_share_the_root_spawn_tree(self):
        spec = Sigma2NCampaignSpec(
            batch_size=5,
            n_periods=64,
            b_thermal_hz=tuple(np.linspace(100.0, 500.0, 5)),
            seed=11,
        )
        full = spec.ensemble().jitter(48)
        part = spec.ensemble(2, 4).jitter(48)
        np.testing.assert_array_equal(part, full[2:4])

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="batch_size"):
            Sigma2NCampaignSpec(batch_size=0, n_periods=64)
        with pytest.raises(ValueError, match="length-3"):
            Sigma2NCampaignSpec(
                batch_size=3, n_periods=64, f0_hz=(1e6, 2e6)
            )
        with pytest.raises(ValueError, match="exact"):
            Sigma2NCampaignSpec(
                batch_size=2, n_periods=64, chunk_periods=32, exact=True
            )
        with pytest.raises(ValueError, match="dividers"):
            BitCampaignSpec(batch_size=2, n_bits=16, dividers=())
        spec = Sigma2NCampaignSpec(batch_size=4, n_periods=64, seed=1)
        with pytest.raises(ValueError, match="rows"):
            spec.ensemble(3, 3)

    @pytest.mark.parametrize(
        "spec",
        [
            Sigma2NCampaignSpec(
                batch_size=3,
                n_periods=128,
                b_thermal_hz=(100.0, 200.0, 300.0),
                seed=9,
                n_sweep=(1, 2, 4),
                chunk_periods=32,
            ),
            BitCampaignSpec(
                batch_size=2,
                n_bits=64,
                dividers=(4, 8),
                seed=5,
                run_procedure_a=True,
            ),
        ],
    )
    def test_json_round_trip(self, spec):
        import json

        payload = json.loads(json.dumps(spec_to_json(spec)))
        assert spec_from_json(payload) == spec

    def test_from_json_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            spec_from_json({"kind": "nope"})
