"""Metrics registry tests: instruments, edges, concurrency, the kill switch."""

from __future__ import annotations

import math
import threading

import pytest

from repro.obs import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    configure_metrics,
    log_buckets,
    merged_snapshot,
    metrics_enabled,
)


@pytest.fixture
def registry():
    return MetricsRegistry("test")


class TestCounter:
    def test_increments_and_totals(self, registry):
        counter = registry.counter("requests_total", "Requests")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5
        assert counter.total() == 5

    def test_labels_partition_the_counts(self, registry):
        counter = registry.counter("by_kind_total", "", labelnames=("kind",))
        counter.inc(kind="bits")
        counter.inc(2, kind="sigma2n")
        assert counter.value(kind="bits") == 1
        assert counter.value(kind="sigma2n") == 2
        assert counter.total() == 3

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("c_total", "")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_label_mismatch_rejected(self, registry):
        counter = registry.counter("labelled_total", "", labelnames=("kind",))
        with pytest.raises(ValueError):
            counter.inc()  # missing the label
        with pytest.raises(ValueError):
            counter.inc(kind="bits", extra="nope")

    def test_concurrent_increments_from_many_threads(self, registry):
        counter = registry.counter("contended_total", "")
        n_threads, per_thread = 8, 5_000
        barrier = threading.Barrier(n_threads)

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == n_threads * per_thread


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("depth", "")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12

    def test_set_max_keeps_the_maximum(self, registry):
        gauge = registry.gauge("max_batch", "")
        gauge.set_max(4)
        gauge.set_max(9)
        gauge.set_max(2)
        assert gauge.value() == 9


class TestHistogramEdges:
    def test_zero_lands_in_the_first_bucket(self, registry):
        hist = registry.histogram("h0", "", buckets=(1.0, 2.0, 4.0))
        hist.observe(0.0)
        assert hist.bucket_counts() == [1, 0, 0, 0]
        assert hist.count == 1
        assert hist.sum == 0.0

    def test_infinity_lands_in_the_overflow_bucket(self, registry):
        hist = registry.histogram("hinf", "", buckets=(1.0, 2.0))
        hist.observe(math.inf)
        assert hist.bucket_counts() == [0, 0, 1]
        # Cumulative counts still close at +Inf.
        assert hist.cumulative()[-1] == (math.inf, 1)

    def test_exact_boundary_is_le_inclusive(self, registry):
        # Prometheus buckets are `le` (less-or-equal): an observation equal
        # to an edge belongs to that edge's bucket, not the next one.
        hist = registry.histogram("hedge", "", buckets=(1.0, 2.0, 4.0))
        hist.observe(2.0)
        assert hist.bucket_counts() == [0, 1, 0, 0]
        hist.observe(1.0)
        assert hist.bucket_counts() == [1, 1, 0, 0]
        hist.observe(4.0)
        assert hist.bucket_counts() == [1, 1, 1, 0]
        hist.observe(4.0000001)
        assert hist.bucket_counts() == [1, 1, 1, 1]

    def test_quantiles_interpolate(self, registry):
        hist = registry.histogram("hq", "", buckets=tuple(float(i) for i in range(1, 11)))
        for value in range(1, 11):
            hist.observe(value - 0.5)
        assert hist.quantile(0.0) <= hist.quantile(0.5) <= hist.quantile(1.0)
        assert 4.0 <= hist.quantile(0.5) <= 6.0
        empty = registry.histogram("hq_empty", "")
        assert empty.quantile(0.5) == 0.0

    def test_buckets_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("bad", "", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("bad_inf", "", buckets=(1.0, math.inf))

    def test_concurrent_observations(self, registry):
        hist = registry.histogram("hconc", "", buckets=(0.5,))
        n_threads, per_thread = 8, 2_000

        def hammer():
            for _ in range(per_thread):
                hist.observe(1.0)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert hist.count == n_threads * per_thread
        assert hist.sum == pytest.approx(n_threads * per_thread * 1.0)


class TestLogBuckets:
    def test_log_buckets_shape(self):
        edges = log_buckets(1e-6, 4.0, 13)
        assert len(edges) == 13
        assert edges[0] == pytest.approx(1e-6)
        for left, right in zip(edges, edges[1:]):
            assert right == pytest.approx(left * 4.0)
        assert list(LATENCY_BUCKETS) == list(log_buckets(1e-6, 4.0, 13))


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self, registry):
        first = registry.counter("shared_total", "")
        second = registry.counter("shared_total", "")
        assert first is second

    def test_kind_mismatch_rejected(self, registry):
        registry.counter("thing", "")
        with pytest.raises(ValueError):
            registry.gauge("thing", "")

    def test_snapshot_covers_every_instrument(self, registry):
        registry.counter("a_total", "count things").inc(3)
        registry.gauge("b", "").set(7)
        registry.histogram("c_seconds", "", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["a_total"] == {
            "type": "counter", "help": "count things", "value": 3,
        }
        assert snapshot["b"]["value"] == 7
        assert snapshot["c_seconds"]["value"]["count"] == 1

    def test_labelled_counter_snapshot_is_a_dict(self, registry):
        counter = registry.counter("k_total", "", labelnames=("kind",))
        counter.inc(2, kind="bits")
        assert counter.snapshot() == {"kind=bits": 2}

    def test_merged_snapshot_later_registry_wins(self):
        first, second = MetricsRegistry("one"), MetricsRegistry("two")
        first.counter("shared_total", "").inc(1)
        second.counter("shared_total", "").inc(10)
        second.counter("only_second_total", "").inc(2)
        merged = merged_snapshot(first, second)
        assert merged["shared_total"]["value"] == 10
        assert merged["only_second_total"]["value"] == 2
        assert merged_snapshot(first, None)["shared_total"]["value"] == 1


class TestKillSwitch:
    def test_disabled_mode_is_a_noop(self, registry):
        counter = registry.counter("killed_total", "")
        gauge = registry.gauge("killed_gauge", "")
        hist = registry.histogram("killed_seconds", "", buckets=(1.0,))
        assert metrics_enabled()
        configure_metrics(enabled=False)
        try:
            assert not metrics_enabled()
            counter.inc(5)
            gauge.set(3)
            gauge.set_max(9)
            hist.observe(0.5)
            assert counter.value() == 0
            assert gauge.value() == 0
            assert hist.count == 0
        finally:
            configure_metrics(enabled=True)
        assert metrics_enabled()
        counter.inc()
        assert counter.value() == 1

    def test_standalone_instruments_also_honour_it(self):
        counter = Counter("standalone_total", "")
        gauge = Gauge("standalone_gauge", "")
        configure_metrics(enabled=False)
        try:
            counter.inc()
            gauge.set(1)
        finally:
            configure_metrics(enabled=True)
        assert counter.value() == 0
        assert gauge.value() == 0
