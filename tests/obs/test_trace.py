"""Trace span tests: nesting, wire propagation, tree assembly, kill switch."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    SpanCollector,
    SpanContext,
    SpanRecord,
    configure_metrics,
    context_to_wire,
    current_span,
    format_tree,
    span,
    span_tree,
    wire_to_parent,
)


@pytest.fixture
def collector():
    return SpanCollector()


class TestSpanBasics:
    def test_span_records_on_exit(self, collector):
        with span("work", collector=collector, rows=4):
            assert len(collector.records()) == 0
        records = collector.records()
        assert len(records) == 1
        record = records[0]
        assert record.name == "work"
        assert record.attributes == {"rows": 4}
        assert record.status == "ok"
        assert record.duration_s >= 0.0
        assert record.parent_id is None

    def test_exception_marks_the_span_as_error(self, collector):
        with pytest.raises(RuntimeError):
            with span("doomed", collector=collector):
                raise RuntimeError("boom")
        assert collector.records()[0].status == "error"

    def test_nesting_through_the_context_variable(self, collector):
        with span("outer", collector=collector) as outer:
            assert current_span() is outer.context
            with span("inner", collector=collector) as inner:
                assert inner.context.parent_id == outer.context.span_id
                assert inner.context.trace_id == outer.context.trace_id
            assert current_span() is outer.context
        assert current_span() is None

    def test_threads_do_not_inherit_the_ambient_span(self, collector):
        seen = {}

        def probe():
            seen["ambient"] = current_span()

        with span("outer", collector=collector):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["ambient"] is None

    def test_explicit_parent_overrides_the_ambient_span(self, collector):
        parent = SpanContext(trace_id="t" * 16, span_id="s" * 16)
        with span("child", collector=collector, parent=parent) as child:
            assert child.context.trace_id == parent.trace_id
            assert child.context.parent_id == parent.span_id


class TestWirePropagation:
    def test_round_trip(self, collector):
        with span("coordinator", collector=collector) as parent:
            wire = context_to_wire(parent.context)
        assert wire == {
            "trace_id": parent.context.trace_id,
            "parent_span_id": parent.context.span_id,
        }
        rebuilt = wire_to_parent(wire)
        with span("worker", collector=collector, parent=rebuilt):
            pass
        coordinator, worker = collector.records()
        assert worker.trace_id == coordinator.trace_id
        assert worker.parent_id == coordinator.span_id

    def test_none_and_empty_payloads(self):
        assert context_to_wire(None) is None
        assert wire_to_parent(None) is None
        assert wire_to_parent({}) is None

    def test_record_payload_round_trip(self, collector):
        with span("shipped", collector=collector, shard=2):
            pass
        record = collector.records()[0]
        clone = SpanRecord.from_dict(record.to_dict())
        assert clone == record

    def test_ingest_merges_remote_records(self, collector):
        remote = SpanCollector()
        with span("remote-side", collector=remote):
            pass
        payloads = [record.to_dict() for record in remote.records()]
        assert collector.ingest(payloads) == 1
        assert collector.records()[0].name == "remote-side"


class TestSpanTree:
    def test_forest_assembly(self):
        records = [
            SpanRecord("root", "t1", "a", None, 1.0, 3.0),
            SpanRecord("child-late", "t1", "c", "a", 2.5, 0.5),
            SpanRecord("child-early", "t1", "b", "a", 1.5, 0.5),
            SpanRecord("orphan", "t1", "d", "missing", 4.0, 0.1),
        ]
        forest = span_tree(records)
        assert [node["name"] for node in forest] == ["root", "orphan"]
        children = forest[0]["children"]
        assert [node["name"] for node in children] == [
            "child-early", "child-late",
        ]

    def test_collector_tree_filters_by_trace(self, collector):
        with span("one", collector=collector):
            pass
        with span("two", collector=collector):
            pass
        records = collector.records()
        tree = collector.tree(trace_id=records[0].trace_id)
        assert len(tree) == 1
        assert tree[0]["name"] == "one"

    def test_format_tree_renders_hosts_and_attributes(self, collector):
        with span("outer", collector=collector, rows=8):
            with span("inner", collector=collector):
                pass
        rendered = format_tree(collector.tree())
        lines = rendered.splitlines()
        assert lines[0].startswith("outer [")
        assert "rows=8" in lines[0]
        assert lines[1].startswith("  inner [")

    def test_collector_capacity_bounds_memory(self):
        collector = SpanCollector(capacity=2)
        for index in range(5):
            with span(f"s{index}", collector=collector):
                pass
        names = [record.name for record in collector.records()]
        assert names == ["s3", "s4"]


class TestKillSwitch:
    def test_disabled_spans_are_noops(self, collector):
        configure_metrics(enabled=False)
        try:
            with span("ghost", collector=collector) as ghost:
                assert ghost.context is None
                assert current_span() is None
                assert context_to_wire(current_span()) is None
        finally:
            configure_metrics(enabled=True)
        assert len(collector.records()) == 0
