"""Stats views vs. raw registry: the one-source-of-truth regression tests.

``ServiceStats`` and ``FabricTelemetry`` are thin views over their metrics
registries; these tests drive a mixed workload and then assert the
human-facing snapshots agree exactly with the raw instrument values — the
drift the shared registry was introduced to make impossible.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.engine.backends import plan_cache_stats
from repro.engine.distributed.fabric.telemetry import (
    ASSIGNED,
    COMPLETED,
    REASSIGNED,
    WORKER_DEAD,
    FabricTelemetry,
    ShardEvent,
)
from repro.obs import global_registry
from repro.serving import BitsRequest, ServiceConfig, Sigma2NRequest, TRNGService
from repro.serving.queue import ServiceOverloaded


async def _mixed_workload(service: TRNGService) -> None:
    bits = [
        service.get_bits(n_bits=24, divider=8, seed=100 + index)
        for index in range(6)
    ]
    sigma = [
        service.get_sigma2n(
            n_periods=1024, seed=200 + index, n_sweep=(4, 16), min_realizations=2
        )
        for index in range(2)
    ]
    await asyncio.gather(*bits, *sigma)


class TestServiceStatsAgreesWithRegistry:
    def test_snapshot_matches_raw_instruments(self):
        service = TRNGService(ServiceConfig(max_batch=4, max_wait_ms=20.0))

        async def scenario():
            async with service:
                await _mixed_workload(service)
                # Count one rejection deterministically (overloading a tiny
                # queue is racy) — the counter is what is under test.
                service.stats.record_rejected()
                return service.stats.snapshot()

        snapshot = asyncio.run(scenario())

        registry = service.registry
        assert snapshot["submitted"] == registry.counter(
            "serve_requests_total", labelnames=("kind",)
        ).total()
        assert snapshot["completed"] == registry.counter(
            "serve_completed_total"
        ).value()
        assert snapshot["failed"] == registry.counter("serve_failed_total").value()
        assert snapshot["rejected"] == 1
        assert snapshot["rejected"] == registry.counter(
            "serve_rejected_total"
        ).value()
        assert snapshot["batches"] == registry.counter(
            "serve_batches_total"
        ).value()
        assert snapshot["coalesced_requests"] == registry.counter(
            "serve_coalesced_requests_total"
        ).value()
        assert snapshot["max_batch_size"] == registry.gauge(
            "serve_max_batch_size"
        ).value()
        assert snapshot["queue_depth"] == registry.gauge(
            "serve_queue_depth"
        ).value()
        batch_hist = registry.histogram("serve_batch_size")
        assert snapshot["batch_size"] == batch_hist.snapshot()
        assert snapshot["batches"] == batch_hist.count
        execute_hist = registry.histogram("serve_execute_seconds")
        assert snapshot["execute_seconds"]["count"] == execute_hist.count
        assert snapshot["execute_seconds"]["count"] == snapshot["batches"]
        wait_hist = registry.histogram("serve_queue_wait_seconds")
        assert snapshot["queue_wait_seconds"]["count"] == wait_hist.count
        # Every submitted request passed through the queue exactly once.
        assert wait_hist.count == snapshot["submitted"]
        # Derived ratios reduce to the registry counters they claim to.
        batched = registry.counter("serve_batched_requests_total").value()
        expected_ratio = (
            snapshot["coalesced_requests"] / batched if batched else 0.0
        )
        assert snapshot["coalesce_ratio"] == expected_ratio
        assert snapshot["requests_by_kind"] == {"bits": 6, "sigma2n": 2}
        # The snapshot's plan-cache section is the global registry's counters.
        assert snapshot["plan_cache"]["hits"] == int(
            global_registry().counter("plan_cache_hits_total").value()
        )
        assert snapshot["plan_cache"] == plan_cache_stats()

    def test_rejected_requests_hit_both_surfaces(self):
        service = TRNGService(
                ServiceConfig(max_batch=1, max_wait_ms=0.0, max_pending=1)
            )

        async def scenario():
            async with service:
                submits = [
                    service.get_bits(n_bits=8, divider=4, seed=index)
                    for index in range(16)
                ]
                return await asyncio.gather(*submits, return_exceptions=True)

        results = asyncio.run(scenario())
        rejected = sum(
            1 for result in results if isinstance(result, ServiceOverloaded)
        )
        assert service.stats.rejected == rejected
        assert (
            service.registry.counter("serve_rejected_total").value() == rejected
        )

    def test_two_services_do_not_share_counters(self):
        first, second = TRNGService(), TRNGService()
        first.stats.record_submit(BitsRequest(n_bits=8, divider=4, seed=1))
        second.stats.record_submit(
            Sigma2NRequest(n_periods=1024, seed=2)
        )
        assert first.stats.submitted == 1
        assert second.stats.submitted == 1
        assert first.stats.requests_by_kind == {"bits": 1}
        assert second.stats.requests_by_kind == {"sigma2n": 1}


class TestFabricTelemetryAgreesWithRegistry:
    def test_summary_reads_the_registry(self):
        telemetry = FabricTelemetry()
        for index in range(3):
            telemetry.record(
                ShardEvent(ASSIGNED, index, "w0", 1, completed=0, total=3)
            )
            telemetry.record(
                ShardEvent(
                    COMPLETED, index, "w0", 1,
                    seconds=0.25, completed=index + 1, total=3,
                )
            )
        telemetry.record(
            ShardEvent(WORKER_DEAD, 9, "w1", 1, error="gone", total=3)
        )
        telemetry.record(
            ShardEvent(REASSIGNED, 9, "w1", 1, error="gone", total=3)
        )
        summary = telemetry.summary()
        registry = telemetry.registry
        assert summary["shards_assigned"] == 3
        assert summary["shards_assigned"] == registry.counter(
            "fabric_shards_assigned_total"
        ).value()
        assert summary["shards_completed"] == registry.counter(
            "fabric_shards_completed_total"
        ).value()
        assert summary["reassignments"] == registry.counter(
            "fabric_reassignments_total"
        ).value()
        assert summary["worker_deaths"] == registry.counter(
            "fabric_worker_deaths_total"
        ).value()
        shard_seconds = registry.histogram("fabric_shard_seconds")
        assert summary["shard_seconds_total"] == shard_seconds.sum
        assert shard_seconds.count == 3
        assert summary["shard_seconds_total"] == pytest.approx(0.75)
        # The event log and the registry describe the same history.
        assert len(telemetry.of_kind(COMPLETED)) == summary["shards_completed"]

    def test_fresh_telemetry_has_fresh_counters(self):
        first, second = FabricTelemetry(), FabricTelemetry()
        first.record(ShardEvent(ASSIGNED, 0, "w0", 1, total=1))
        assert first.summary()["shards_assigned"] == 1
        assert second.summary()["shards_assigned"] == 0
