"""Exporter tests: Prometheus text exposition, JSON snapshots, summaries."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    json_snapshot,
    render_prometheus,
    summary_line,
    write_metrics_json,
)
from repro.obs.export import sanitize_name


@pytest.fixture
def registry():
    registry = MetricsRegistry("export-test")
    counter = registry.counter(
        "serve_requests_total", "Requests submitted", labelnames=("kind",)
    )
    counter.inc(3, kind="bits")
    counter.inc(1, kind="sigma2n")
    registry.gauge("serve_queue_depth", "Queue depth").set(2)
    hist = registry.histogram("rtt_seconds", "RTT", buckets=(0.5, 1.0, 2.0))
    for value in (0.1, 0.7, 0.7, 5.0):
        hist.observe(value)
    return registry


class TestPrometheusExposition:
    def test_parsed_line_by_line(self, registry):
        lines = render_prometheus(registry).splitlines()
        # Every line is a comment or `name[{labels}] value` — no blank lines.
        assert all(lines)
        samples = {}
        types = {}
        for line in lines:
            if line.startswith("# HELP"):
                continue
            if line.startswith("# TYPE"):
                _, _, name, kind = line.split()
                types[name] = kind
                continue
            name_part, value = line.rsplit(" ", 1)
            samples[name_part] = value
        assert types["serve_requests_total"] == "counter"
        assert types["serve_queue_depth"] == "gauge"
        assert types["rtt_seconds"] == "histogram"
        assert samples['serve_requests_total{kind="bits"}'] == "3"
        assert samples['serve_requests_total{kind="sigma2n"}'] == "1"
        assert samples["serve_queue_depth"] == "2"
        # Histogram buckets are cumulative and close at +Inf == _count.
        assert samples['rtt_seconds_bucket{le="0.5"}'] == "1"
        assert samples['rtt_seconds_bucket{le="1"}'] == "3"
        assert samples['rtt_seconds_bucket{le="2"}'] == "3"
        assert samples['rtt_seconds_bucket{le="+Inf"}'] == "4"
        assert samples["rtt_seconds_count"] == "4"
        assert float(samples["rtt_seconds_sum"]) == pytest.approx(6.5)

    def test_help_lines_present(self, registry):
        text = render_prometheus(registry)
        assert "# HELP serve_requests_total Requests submitted" in text

    def test_empty_unlabeled_metrics_emit_zero_samples(self):
        registry = MetricsRegistry("empty")
        registry.counter("untouched_total", "")
        registry.gauge("untouched_gauge", "")
        lines = render_prometheus(registry).splitlines()
        assert "untouched_total 0" in lines
        assert "untouched_gauge 0" in lines

    def test_none_registries_are_skipped(self, registry):
        assert render_prometheus(None, registry) == render_prometheus(registry)

    def test_sanitize_name(self):
        assert sanitize_name("ok_name:sub") == "ok_name:sub"
        assert sanitize_name("bad-name.metric") == "bad_name_metric"
        assert sanitize_name("0starts_with_digit") == "_0starts_with_digit"


class TestJsonSnapshot:
    def test_merged_and_json_serializable(self, registry):
        other = MetricsRegistry("other")
        other.counter("extra_total", "").inc(7)
        snapshot = json_snapshot(registry, other)
        assert snapshot["extra_total"]["value"] == 7
        assert snapshot["serve_requests_total"]["value"] == {
            "kind=bits": 3, "kind=sigma2n": 1,
        }
        # +Inf bucket edge serializes as the string "+Inf", not Infinity.
        encoded = json.dumps(snapshot, allow_nan=False)
        assert "+Inf" in encoded

    def test_first_registry_wins_on_clashes(self, registry):
        other = MetricsRegistry("other")
        other.gauge("serve_queue_depth", "").set(99)
        snapshot = json_snapshot(registry, other)
        assert snapshot["serve_queue_depth"]["value"] == 2

    def test_write_metrics_json(self, tmp_path, registry):
        path = tmp_path / "metrics.json"
        write_metrics_json(str(path), registry, extra={"command": "serve"})
        payload = json.loads(path.read_text())
        assert payload["command"] == "serve"
        assert payload["metrics"]["serve_queue_depth"]["value"] == 2


class TestSummaryLine:
    def test_picks_out_serving_metrics(self, registry):
        line = summary_line(registry)
        assert line.startswith("[obs] ")
        assert "req=4" in line
        assert "queue=2" in line

    def test_empty_registries_degrade_gracefully(self):
        assert summary_line(MetricsRegistry("void")) == "[obs] no metrics recorded"

    def test_coalesce_and_latency_sections(self):
        registry = MetricsRegistry("serving")
        sizes = registry.histogram("serve_batch_size", "", buckets=(1.0, 2.0, 4.0))
        for size in (1, 3, 4):
            sizes.observe(size)
        registry.counter("serve_coalesced_requests_total", "").inc(7)
        execute = registry.histogram("serve_execute_seconds", "")
        execute.observe(0.01)
        line = summary_line(registry)
        assert "batches=3" in line
        assert "coalesce=88%" in line  # 7 of 8 batched requests shared a call
        assert "exec_p50=" in line and "p99=" in line
