"""Integration tests that replay the paper's experiment end to end.

These tests are the executable form of EXPERIMENTS.md: starting from the
virtual Cyclone III platform (the hardware substitute) they re-derive every
headline number of Sections III-E and IV-B and check it against the paper.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    assess_independence,
    bienayme_linearity_test,
    extract_thermal_noise_from_curve,
    fit_sigma2_n_curve,
    sigma2_n_closed_form,
)
from repro.core.ratio import independence_threshold, ratio_constant, thermal_ratio
from repro.measurement import VirtualEvaristePlatform
from repro.paper import PAPER_REFERENCE, paper_phase_noise_psd


@pytest.fixture(scope="module")
def campaign_curve():
    platform = VirtualEvaristePlatform(rng=np.random.default_rng(2014))
    return platform.sigma2_n_campaign(n_periods=250_000)


@pytest.fixture(scope="module")
def report(campaign_curve):
    return extract_thermal_noise_from_curve(campaign_curve)


class TestFig7Shape:
    def test_normalised_curve_is_superlinear(self, campaign_curve):
        """Fig. 7: f0^2 sigma^2_N grows faster than linearly at large N."""
        n = campaign_curve.n_values.astype(float)
        normalized = campaign_curve.normalized_sigma2_values
        small = normalized[n <= 10] / n[n <= 10]
        large = normalized[n >= 1000] / n[n >= 1000]
        assert np.median(large) > 1.15 * np.median(small)

    def test_fit_matches_measured_points(self, campaign_curve):
        fit = fit_sigma2_n_curve(campaign_curve)
        prediction = fit.predict(campaign_curve.n_values)
        relative_error = np.abs(prediction - campaign_curve.sigma2_values_s2) / prediction
        assert np.median(relative_error) < 0.1

    def test_small_n_region_matches_paper_slope(self, campaign_curve):
        """In the thermal-dominated region the normalised slope is ~5.36e-6."""
        n = campaign_curve.n_values
        normalized = campaign_curve.normalized_sigma2_values
        mask = n <= 30
        slopes = normalized[mask] / n[mask]
        assert np.median(slopes) == pytest.approx(
            PAPER_REFERENCE.normalized_thermal_slope, rel=0.1
        )


class TestSection4Numbers:
    def test_b_thermal(self, report):
        assert report.b_thermal_hz == pytest.approx(
            PAPER_REFERENCE.b_thermal_hz, rel=0.08
        )

    def test_thermal_jitter_ps(self, report):
        assert report.thermal_jitter_std_ps == pytest.approx(15.89, rel=0.04)

    def test_jitter_ratio_permille(self, report):
        assert report.jitter_ratio_permille == pytest.approx(1.6, rel=0.08)

    def test_ratio_constant_k(self, report):
        assert report.ratio_constant == pytest.approx(
            PAPER_REFERENCE.ratio_constant, rel=0.6
        )

    def test_independence_threshold(self, report):
        assert report.independence_threshold_n == pytest.approx(
            PAPER_REFERENCE.independence_threshold_n, rel=0.6
        )


class TestSection3EIndependenceClaims:
    def test_theoretical_ratio_and_threshold(self):
        """With the paper's exact coefficients, r_N and the threshold follow."""
        psd = paper_phase_noise_psd()
        f0 = PAPER_REFERENCE.f0_hz
        assert ratio_constant(psd, f0) == pytest.approx(5354.0, rel=1e-3)
        assert thermal_ratio(psd, f0, 281) > 0.95
        assert thermal_ratio(psd, f0, 300) < 0.95
        assert independence_threshold(psd, f0, 0.95) == pytest.approx(281.8, abs=1.0)

    def test_dependence_detected_on_platform_data(self, campaign_curve):
        result = bienayme_linearity_test(campaign_curve)
        assert not result.independent

    def test_independence_verdict_from_raw_record(self):
        platform = VirtualEvaristePlatform(rng=np.random.default_rng(99))
        record = platform.relative_jitter(120_000)
        verdict = assess_independence(record, platform.f0_hz)
        assert not verdict.jitter_realizations_independent

    def test_theory_consistency_eq9_eq11(self):
        from repro.core import sigma2_n_integral

        psd = paper_phase_noise_psd()
        for n in (10, 300, 3000):
            closed = float(sigma2_n_closed_form(psd, PAPER_REFERENCE.f0_hz, n))
            integral = sigma2_n_integral(psd, PAPER_REFERENCE.f0_hz, n)
            assert integral == pytest.approx(closed, rel=1e-3)
