"""Integration tests of the complete TRNG chain: source -> digitizer -> tests.

These exercise the combination of subsystems the way a TRNG designer would:
build an eRO-TRNG, size the accumulation with the refined model, generate
bits, run the AIS31 batteries, then attack the generator and watch the
paper's thermal online test (and the classical tests) react.
"""

from __future__ import annotations

import numpy as np

from repro.ais31 import (
    ThermalNoiseOnlineTest,
    monobit_online_test,
    procedure_a,
    total_failure_test,
)
from repro.attacks import FrequencyInjectionAttack, InjectionParameters
from repro.phase import PhaseNoisePSD
from repro.trng import EROTRNG, EROTRNGConfiguration, shannon_entropy_per_bit
from repro.trng.models import RefinedEntropyModel

#: A strongly jittery design (so the integration tests stay fast: fewer
#: accumulation periods are needed per bit than with the paper's oscillators).
OSCILLATOR_PSD = PhaseNoisePSD(b_thermal_hz=2.5e4, b_flicker_hz2=1e7)
F0 = 103e6


def build_trng(divider: int, seed: int = 0) -> EROTRNG:
    configuration = EROTRNGConfiguration(
        f0_hz=F0,
        oscillator_psd=OSCILLATOR_PSD,
        divider=divider,
        frequency_mismatch=1.3e-3,
    )
    return EROTRNG(configuration, rng=np.random.default_rng(seed))


class TestDesignFlow:
    def test_refined_model_sizes_the_divider(self):
        """The accumulation length suggested by the refined model produces bits
        whose empirical entropy meets the target."""
        model = RefinedEntropyModel(F0, PhaseNoisePSD(5e4, 2e7))
        divider = model.accumulation_for_entropy(0.997)
        trng = build_trng(divider, seed=1)
        bits = trng.generate(5_000)
        assert shannon_entropy_per_bit(bits) > 0.99

    def test_undersized_divider_yields_less_entropy(self):
        model = RefinedEntropyModel(F0, PhaseNoisePSD(5e4, 2e7))
        divider = model.accumulation_for_entropy(0.997)
        good = build_trng(divider, seed=2).generate(4_000)
        starved = build_trng(max(divider // 200, 2), seed=2).generate(4_000)
        from repro.trng.entropy import markov_entropy_rate

        assert markov_entropy_rate(starved) < markov_entropy_rate(good)


class TestStatisticalBatteries:
    def test_healthy_generator_passes_procedure_a(self):
        trng = build_trng(divider=250, seed=3)
        bits = trng.generate(21_000)
        results = procedure_a(bits)
        # Allow at most one marginal failure (statistical tests on one block).
        assert sum(0 if result.passed else 1 for result in results) <= 1

    def test_healthy_generator_passes_online_monitoring(self):
        trng = build_trng(divider=250, seed=4)
        bits = trng.generate(40_000)
        assert total_failure_test(bits).passed
        report = monobit_online_test(block_size_bits=20_000).run(bits)
        assert not report.alarm


class TestAttackDetection:
    def test_thermal_online_test_detects_injection_attack(self):
        """End-to-end version of the paper's conclusion: the embedded thermal
        measurement notices the attack long before the bit stream itself is
        obviously broken."""
        rng = np.random.default_rng(11)
        from repro.oscillator.period_model import JitteryClock

        osc1 = JitteryClock(F0, OSCILLATOR_PSD, rng=rng)
        osc2 = JitteryClock(F0, OSCILLATOR_PSD, rng=rng)
        online = ThermalNoiseOnlineTest(
            reference_b_thermal_hz=2.0 * OSCILLATOR_PSD.b_thermal_hz,
            minimum_ratio=0.35,
            accumulation_lengths=(2048, 8192),
            n_windows=384,
        )
        healthy = online.execute(osc1, osc2)
        assert healthy.passed

        parameters = InjectionParameters(
            injection_frequency_hz=F0, locking_strength=0.97
        )
        attacked_1 = FrequencyInjectionAttack(osc1, parameters, rng=rng)
        attacked_2 = FrequencyInjectionAttack(osc2, parameters, rng=rng)
        compromised = online.execute(attacked_1, attacked_2)
        assert not compromised.passed
        assert compromised.ratio < healthy.ratio
