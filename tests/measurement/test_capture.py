"""Tests for capture campaigns (relative-jitter and counter paths)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fitting import fit_sigma2_n_curve
from repro.core.theory import sigma2_n_closed_form
from repro.measurement.capture import (
    counter_capture_campaign,
    relative_jitter_campaign,
    relative_jitter_record,
)
from repro.oscillator.period_model import IdealClock, JitteryClock
from repro.phase.psd import PhaseNoisePSD


@pytest.fixture
def oscillator_pair(rng):
    psd = PhaseNoisePSD(b_thermal_hz=138.0, b_flicker_hz2=0.95e6)
    osc1 = JitteryClock(103e6, psd, rng=rng)
    osc2 = JitteryClock(103e6, psd, rng=rng)
    return osc1, osc2


class TestRelativeJitterRecord:
    def test_record_length(self, oscillator_pair):
        osc1, osc2 = oscillator_pair
        record = relative_jitter_record(osc1, osc2, 1000)
        assert record.shape == (1000,)

    def test_relative_variance_is_sum_of_both(self, rng):
        psd = PhaseNoisePSD(138.0, 0.0)
        osc1 = JitteryClock(103e6, psd, rng=rng)
        osc2 = JitteryClock(103e6, psd, rng=rng)
        record = relative_jitter_record(osc1, osc2, 60_000)
        expected_variance = 2.0 * 138.0 / (103e6) ** 3
        assert np.var(record) == pytest.approx(expected_variance, rel=0.05)

    def test_identical_ideal_clocks_give_nominal_periods(self):
        record = relative_jitter_record(IdealClock(1e8), IdealClock(1e8), 100)
        np.testing.assert_allclose(record, 1e-8)

    def test_validation(self, oscillator_pair):
        osc1, osc2 = oscillator_pair
        with pytest.raises(ValueError):
            relative_jitter_record(osc1, osc2, 0)


class TestRelativeJitterCampaign:
    def test_campaign_produces_fittable_curve(self, oscillator_pair):
        osc1, osc2 = oscillator_pair
        curve = relative_jitter_campaign(osc1, osc2, n_periods=120_000)
        fit = fit_sigma2_n_curve(curve)
        assert fit.b_thermal_hz == pytest.approx(276.0, rel=0.1)
        assert curve.f0_hz == pytest.approx(103e6)

    def test_explicit_sweep(self, oscillator_pair):
        osc1, osc2 = oscillator_pair
        curve = relative_jitter_campaign(
            osc1, osc2, n_periods=20_000, n_sweep=[1, 10, 100]
        )
        np.testing.assert_array_equal(curve.n_values, [1, 10, 100])


class TestCounterCampaign:
    def test_counter_campaign_structure(self, rng):
        psd = PhaseNoisePSD(2000.0, 0.0)
        osc1 = JitteryClock(1e8, psd, rng=rng)
        osc2 = JitteryClock(1e8, psd, rng=rng)
        result = counter_capture_campaign(
            osc1, osc2, n_sweep=[5_000, 20_000], n_windows=64
        )
        assert len(result.captures) == 2
        np.testing.assert_array_equal(result.curve.n_values, [5_000, 20_000])
        assert np.all(result.curve.sigma2_values_s2 >= 0.0)

    def test_counter_campaign_tracks_theory(self, rng):
        psd = PhaseNoisePSD(3000.0, 0.0)
        osc1 = JitteryClock(1e8, psd, rng=rng)
        osc2 = JitteryClock(1e8, psd, rng=rng)
        result = counter_capture_campaign(
            osc1, osc2, n_sweep=[30_000], n_windows=200
        )
        expected = float(sigma2_n_closed_form(PhaseNoisePSD(6000.0, 0.0), 1e8, 30_000))
        assert result.curve.sigma2_values_s2[0] == pytest.approx(expected, rel=0.4)

    def test_counter_campaign_validation(self, rng):
        psd = PhaseNoisePSD(2000.0, 0.0)
        osc1 = JitteryClock(1e8, psd, rng=rng)
        osc2 = JitteryClock(1e8, psd, rng=rng)
        with pytest.raises(ValueError):
            counter_capture_campaign(osc1, osc2, n_sweep=[10], n_windows=2)
        with pytest.raises(ValueError):
            counter_capture_campaign(osc1, osc2, n_sweep=[0], n_windows=16)
