"""Tests for the Fig. 6 differential counter simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.theory import sigma2_n_closed_form
from repro.measurement.counter import (
    CounterCapture,
    DifferentialJitterCounter,
    count_edges_in_windows,
)
from repro.oscillator.period_model import IdealClock, JitteryClock
from repro.phase.psd import PhaseNoisePSD


class TestCountEdges:
    def test_exact_counting(self):
        edges = np.arange(0.0, 10.0, 1.0)
        boundaries = np.array([0.0, 3.5, 7.2, 9.9])
        counts = count_edges_in_windows(edges, boundaries)
        np.testing.assert_array_equal(counts, [4, 4, 2])

    def test_boundary_edge_belongs_to_next_window(self):
        edges = np.array([0.0, 1.0, 2.0, 3.0])
        boundaries = np.array([0.0, 2.0, 3.5])
        counts = count_edges_in_windows(edges, boundaries)
        np.testing.assert_array_equal(counts, [2, 2])

    def test_validation(self):
        with pytest.raises(ValueError):
            count_edges_in_windows(np.arange(5.0), np.array([1.0]))
        with pytest.raises(ValueError):
            count_edges_in_windows(np.arange(5.0), np.array([2.0, 1.0]))


class TestCounterCapture:
    def test_s_n_values_from_counts(self):
        capture = CounterCapture(
            counts=np.array([100, 102, 99, 101]), n_accumulations=10, f0_hz=1e8
        )
        np.testing.assert_allclose(
            capture.s_n_values(), np.array([2, -3, 2]) / 1e8
        )

    def test_quantization_variance(self):
        capture = CounterCapture(
            counts=np.array([1, 2, 3]), n_accumulations=1, f0_hz=1e8
        )
        assert capture.quantization_variance_s2 == pytest.approx((1e-8) ** 2 / 2.0)

    def test_sigma2_n_subtracts_quantization_and_clips(self):
        capture = CounterCapture(
            counts=np.array([100, 100, 100, 100]), n_accumulations=5, f0_hz=1e8
        )
        assert capture.sigma2_n(correct_quantization=False) == 0.0
        assert capture.sigma2_n(correct_quantization=True) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CounterCapture(np.array([1, 2]), 0, 1e8)
        with pytest.raises(ValueError):
            CounterCapture(np.array([1, 2]), 1, 0.0)
        short = CounterCapture(np.array([1]), 1, 1e8)
        with pytest.raises(ValueError):
            short.s_n_values()


class TestDifferentialCounterOnIdealClocks:
    def test_identical_ideal_clocks_give_constant_counts(self):
        """Two perfect clocks at the same frequency: every window holds exactly
        N edges (up to a possible +-1 alignment at the very first window)."""
        counter = DifferentialJitterCounter(IdealClock(1e8), IdealClock(1e8))
        capture = counter.capture(n_accumulations=100, n_windows=20)
        assert capture.counts.size == 20
        assert np.all(np.abs(capture.counts - 100) <= 1)
        assert np.ptp(capture.counts) <= 1

    def test_frequency_offset_shows_in_counts(self):
        """A 1% faster Osc1 yields ~1% more counts per window."""
        counter = DifferentialJitterCounter(IdealClock(1.01e8), IdealClock(1e8))
        capture = counter.capture(n_accumulations=1000, n_windows=10)
        assert np.all(np.abs(capture.counts - 1010) <= 1)

    def test_capture_validation(self):
        counter = DifferentialJitterCounter(IdealClock(1e8), IdealClock(1e8))
        with pytest.raises(ValueError):
            counter.capture(0, 10)
        with pytest.raises(ValueError):
            counter.capture(10, 0)


class TestDifferentialCounterOnJitteryClocks:
    def test_counter_sigma2_matches_theory_at_large_n(self):
        """For N large enough that the jitter beats the count quantisation,
        the counter-based sigma^2_N must approach the closed form."""
        psd = PhaseNoisePSD(b_thermal_hz=2000.0, b_flicker_hz2=0.0)
        rng = np.random.default_rng(42)
        osc1 = JitteryClock(1e8, psd, rng=rng)
        osc2 = JitteryClock(1e8, psd, rng=rng)
        counter = DifferentialJitterCounter(osc1, osc2)
        n = 20_000
        capture = counter.capture(n_accumulations=n, n_windows=300)
        measured = capture.sigma2_n(correct_quantization=True)
        relative_psd = PhaseNoisePSD(4000.0, 0.0)
        expected = float(sigma2_n_closed_form(relative_psd, 1e8, n))
        assert measured == pytest.approx(expected, rel=0.35)
