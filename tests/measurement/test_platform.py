"""Tests for the virtual Evariste platform (the paper's hardware substitute)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.thermal_extraction import extract_thermal_noise_from_curve
from repro.measurement.platform import (
    PAPER_CYCLONE_III,
    PlatformConfiguration,
)
from repro.paper import PAPER_B_FLICKER_HZ2, PAPER_B_THERMAL_HZ, PAPER_F0_HZ
from repro.phase.psd import PhaseNoisePSD


class TestConfiguration:
    def test_paper_configuration_values(self):
        assert PAPER_CYCLONE_III.f0_hz == pytest.approx(PAPER_F0_HZ)
        assert PAPER_CYCLONE_III.oscillator_psd.b_thermal_hz == pytest.approx(
            PAPER_B_THERMAL_HZ / 2.0
        )
        assert PAPER_CYCLONE_III.oscillator_psd.b_flicker_hz2 == pytest.approx(
            PAPER_B_FLICKER_HZ2 / 2.0
        )

    def test_configuration_validation(self):
        with pytest.raises(ValueError):
            PlatformConfiguration("x", 0.0, PhaseNoisePSD(1.0, 1.0))
        with pytest.raises(ValueError):
            PlatformConfiguration(
                "x", 1e8, PhaseNoisePSD(1.0, 1.0), frequency_mismatch=0.1
            )


class TestPlatform:
    def test_relative_psd_is_twice_per_oscillator(self, platform):
        assert platform.relative_psd.b_thermal_hz == pytest.approx(
            PAPER_B_THERMAL_HZ
        )
        assert platform.relative_psd.b_flicker_hz2 == pytest.approx(
            PAPER_B_FLICKER_HZ2
        )

    def test_oscillators_have_mismatched_frequencies(self, platform):
        assert platform.oscillator_1.f0_hz > platform.oscillator_2.f0_hz

    def test_relative_jitter_std(self, platform):
        record = platform.relative_jitter(60_000)
        jitter = record - np.mean(record)
        assert np.std(jitter) == pytest.approx(15.89e-12, rel=0.06)

    def test_campaign_reproduces_paper_thermal_extraction(self, platform):
        curve = platform.sigma2_n_campaign(n_periods=150_000)
        report = extract_thermal_noise_from_curve(curve)
        assert report.thermal_jitter_std_ps == pytest.approx(15.89, rel=0.05)
        assert report.b_thermal_hz == pytest.approx(PAPER_B_THERMAL_HZ, rel=0.08)

    def test_counter_capture_runs(self, platform):
        capture = platform.counter_capture(n_accumulations=5000, n_windows=32)
        assert capture.counts.size == 32
        assert capture.n_accumulations == 5000

    def test_counter_campaign_runs(self, platform):
        result = platform.counter_campaign(n_sweep=[2000, 8000], n_windows=32)
        assert len(result.captures) == 2

    def test_repr(self, platform):
        assert "103.0 MHz" in repr(platform)
