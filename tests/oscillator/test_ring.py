"""Unit tests for the ring-oscillator model (top-down and bottom-up paths)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.noise.technology import get_node
from repro.oscillator.ring import RingOscillator
from repro.phase.isf import phase_psd_from_inverter, ring_oscillation_frequency


class TestTopDownConstruction:
    def test_from_phase_noise(self, rng):
        oscillator = RingOscillator.from_phase_noise(103e6, 276.0, 1.9e6, rng=rng)
        assert oscillator.f0_hz == pytest.approx(103e6)
        assert oscillator.psd.b_thermal_hz == pytest.approx(276.0)
        assert oscillator.psd.b_flicker_hz2 == pytest.approx(1.9e6)

    def test_nominal_period(self, rng):
        oscillator = RingOscillator.from_phase_noise(100e6, 100.0, 0.0, rng=rng)
        assert oscillator.nominal_period_s == pytest.approx(10e-9)

    def test_thermal_jitter_std(self, rng):
        oscillator = RingOscillator.from_phase_noise(103e6, 276.04, 0.0, rng=rng)
        assert oscillator.thermal_jitter_std_s == pytest.approx(15.89e-12, rel=1e-3)

    def test_minimum_stage_count(self, rng):
        with pytest.raises(ValueError):
            RingOscillator.from_phase_noise(103e6, 276.0, 0.0, n_stages=2, rng=rng)

    def test_periods_and_jitter_consistent(self, rng):
        oscillator = RingOscillator.from_phase_noise(103e6, 276.0, 1.9e6, rng=rng)
        decomposition = oscillator.decompose(1000)
        np.testing.assert_allclose(
            decomposition.jitter_s,
            decomposition.periods_s - oscillator.nominal_period_s,
        )

    def test_edge_times_increasing(self, rng):
        oscillator = RingOscillator.from_phase_noise(103e6, 276.0, 1.9e6, rng=rng)
        edges = oscillator.edge_times(500)
        assert np.all(np.diff(edges) > 0.0)

    def test_repr_mentions_name_and_frequency(self, rng):
        oscillator = RingOscillator.from_phase_noise(
            103e6, 276.0, 1.9e6, rng=rng, name="OscA"
        )
        text = repr(oscillator)
        assert "OscA" in text
        assert "1.03e+08" in text


class TestBottomUpConstruction:
    def test_from_technology_matches_isf_conversion(self, rng):
        node = get_node("65nm")
        oscillator = RingOscillator.from_technology(node, 5, rng=rng)
        expected_psd = phase_psd_from_inverter(node.inverter(), 5)
        expected_f0 = ring_oscillation_frequency(node.inverter(), 5)
        assert oscillator.f0_hz == pytest.approx(expected_f0)
        assert oscillator.psd.b_thermal_hz == pytest.approx(expected_psd.b_thermal_hz)
        assert oscillator.psd.b_flicker_hz2 == pytest.approx(
            expected_psd.b_flicker_hz2
        )

    def test_from_technology_by_name(self, rng):
        oscillator = RingOscillator.from_technology("90nm", 5, rng=rng)
        assert oscillator.f0_hz > 1e8

    def test_more_stages_lower_frequency(self, rng):
        short = RingOscillator.from_technology("65nm", 3, rng=rng)
        long = RingOscillator.from_technology("65nm", 7, rng=rng)
        assert long.f0_hz < short.f0_hz

    def test_generated_periods_match_nominal_frequency(self, rng):
        oscillator = RingOscillator.from_technology("65nm", 5, rng=rng)
        periods = oscillator.periods(20_000)
        # Flicker FM lets the mean frequency wander slowly, so the tolerance is
        # loose; the point is that the synthesized rate is the predicted one.
        assert np.mean(periods) == pytest.approx(
            oscillator.nominal_period_s, rel=0.02
        )
