"""Unit tests for the PLL-synthesized clock (coherent-sampling substrate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.oscillator.pll import PLLClock, PLLConfiguration


class TestPLLConfiguration:
    def test_valid_configuration(self):
        configuration = PLLConfiguration(157, 8, 10e-12)
        assert configuration.multiplication_factor == 157

    def test_requires_coprime_ratio(self):
        with pytest.raises(ValueError):
            PLLConfiguration(10, 4, 10e-12)

    def test_rejects_zero_factors(self):
        with pytest.raises(ValueError):
            PLLConfiguration(0, 3, 10e-12)

    def test_rejects_negative_jitter(self):
        with pytest.raises(ValueError):
            PLLConfiguration(3, 2, -1e-12)


class TestPLLClock:
    def test_output_frequency(self, rng):
        clock = PLLClock(125e6, PLLConfiguration(157, 8, 10e-12), rng=rng)
        assert clock.f0_hz == pytest.approx(125e6 * 157 / 8)

    def test_pattern_geometry(self, rng):
        clock = PLLClock(125e6, PLLConfiguration(157, 8, 10e-12), rng=rng)
        assert clock.pattern_length == 8
        assert clock.samples_per_pattern == 157
        assert clock.phase_step_s == pytest.approx(1.0 / (clock.f0_hz * 8))

    def test_invalid_reference_frequency(self):
        with pytest.raises(ValueError):
            PLLClock(0.0, PLLConfiguration(3, 2, 1e-12))

    def test_period_statistics(self, rng):
        jitter = 10e-12
        clock = PLLClock(125e6, PLLConfiguration(157, 8, jitter), rng=rng)
        periods = clock.periods(50_000)
        assert np.mean(periods) == pytest.approx(1.0 / clock.f0_hz, rel=1e-4)
        assert np.std(periods) == pytest.approx(jitter, rel=0.05)

    def test_zero_jitter_clock_is_deterministic(self, rng):
        clock = PLLClock(125e6, PLLConfiguration(157, 8, 0.0), rng=rng)
        np.testing.assert_allclose(clock.periods(100), 1.0 / clock.f0_hz)

    def test_edge_times_monotonic(self, rng):
        clock = PLLClock(125e6, PLLConfiguration(157, 8, 10e-12), rng=rng)
        assert np.all(np.diff(clock.edge_times(1000)) > 0.0)
