"""Unit tests for the clock abstractions (ideal and jittery clocks)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.oscillator.period_model import Clock, IdealClock, JitteryClock
from repro.phase.psd import PhaseNoisePSD


class TestIdealClock:
    def test_constant_periods(self):
        clock = IdealClock(100e6)
        np.testing.assert_allclose(clock.periods(10), 1e-8)

    def test_edge_times_equally_spaced(self):
        clock = IdealClock(1e6)
        edges = clock.edge_times(4, start_time_s=1.0)
        np.testing.assert_allclose(edges, 1.0 + np.arange(5) * 1e-6)

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            IdealClock(0.0)

    def test_negative_period_count(self):
        with pytest.raises(ValueError):
            IdealClock(1e6).periods(-1)

    def test_satisfies_clock_protocol(self):
        assert isinstance(IdealClock(1e6), Clock)


class TestJitteryClock:
    def test_frequency_exposed(self, rng):
        clock = JitteryClock(103e6, PhaseNoisePSD(276.0, 0.0), rng=rng)
        assert clock.f0_hz == pytest.approx(103e6)

    def test_periods_fluctuate_around_nominal(self, rng):
        clock = JitteryClock(103e6, PhaseNoisePSD(276.0, 0.0), rng=rng)
        periods = clock.periods(10_000)
        assert np.mean(periods) == pytest.approx(1.0 / 103e6, rel=1e-4)
        assert np.std(periods) > 0.0

    def test_successive_calls_produce_fresh_noise(self, rng):
        clock = JitteryClock(103e6, PhaseNoisePSD(276.0, 0.0), rng=rng)
        first = clock.periods(100)
        second = clock.periods(100)
        assert not np.array_equal(first, second)

    def test_edge_times_monotonic(self, rng):
        clock = JitteryClock(103e6, PhaseNoisePSD(276.0, 1.9e6), rng=rng)
        edges = clock.edge_times(1000)
        assert np.all(np.diff(edges) > 0.0)

    def test_satisfies_clock_protocol(self, rng):
        assert isinstance(JitteryClock(1e6, PhaseNoisePSD(1.0, 0.0), rng=rng), Clock)

    def test_jitter_accessor(self, rng):
        clock = JitteryClock(103e6, PhaseNoisePSD(276.0, 0.0), rng=rng)
        jitter = clock.jitter(5000)
        assert abs(np.mean(jitter)) < 5 * np.std(jitter) / np.sqrt(5000)
