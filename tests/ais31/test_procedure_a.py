"""Tests for the AIS31 Procedure A battery (T0 - T5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ais31.procedure_a import (
    all_passed,
    procedure_a,
    t0_disjointness_test,
    t1_monobit_test,
    t2_poker_test,
    t3_runs_test,
    t4_long_run_test,
    t5_autocorrelation_test,
)


class TestOnIdealBits:
    def test_t1_passes(self, unbiased_bits):
        assert t1_monobit_test(unbiased_bits).passed

    def test_t2_passes(self, unbiased_bits):
        assert t2_poker_test(unbiased_bits).passed

    def test_t3_passes(self, unbiased_bits):
        assert t3_runs_test(unbiased_bits).passed

    def test_t4_passes(self, unbiased_bits):
        assert t4_long_run_test(unbiased_bits).passed

    def test_t5_passes(self, unbiased_bits):
        assert t5_autocorrelation_test(unbiased_bits).passed

    def test_t0_passes_on_long_ideal_stream(self, rng):
        bits = rng.integers(0, 2, size=(1 << 16) * 48 + 64)
        assert t0_disjointness_test(bits).passed

    def test_full_battery_passes(self, unbiased_bits):
        results = procedure_a(unbiased_bits)
        assert all_passed(results)
        assert len(results) == 5


class TestOnDefectiveBits:
    def test_t1_fails_on_biased_bits(self, biased_bits):
        result = t1_monobit_test(biased_bits)
        assert not result.passed
        assert result.statistic > 10346

    def test_t2_fails_on_patterned_bits(self):
        bits = np.tile([1, 0, 1, 0], 5000)
        assert not t2_poker_test(bits).passed

    def test_t3_fails_on_sticky_bits(self, rng):
        """A strongly correlated (sticky) source has far too few short runs."""
        bits = np.empty(20_000, dtype=int)
        bits[0] = 0
        draws = rng.random(20_000)
        for index in range(1, 20_000):
            bits[index] = bits[index - 1] if draws[index] < 0.9 else 1 - bits[index - 1]
        assert not t3_runs_test(bits).passed

    def test_t4_fails_on_long_run(self, unbiased_bits):
        bits = unbiased_bits[:20_000].copy()
        bits[1000:1040] = 1
        assert not t4_long_run_test(bits).passed

    def test_t5_fails_on_alternating_bits(self):
        bits = np.tile([0, 1], 5000)
        assert not t5_autocorrelation_test(bits).passed

    def test_t0_fails_on_repeating_words(self):
        word = np.concatenate([np.ones(24, dtype=int), np.zeros(24, dtype=int)])
        bits = np.tile(word, 1 << 16)
        result = t0_disjointness_test(bits)
        assert not result.passed
        assert result.statistic > 0

    def test_battery_reports_failures(self, biased_bits):
        results = procedure_a(biased_bits)
        assert not all_passed(results)


class TestInputValidation:
    def test_too_short_sequences_rejected(self):
        with pytest.raises(ValueError):
            t1_monobit_test(np.ones(100, dtype=int))
        with pytest.raises(ValueError):
            t5_autocorrelation_test(np.ones(100, dtype=int))
        with pytest.raises(ValueError):
            t0_disjointness_test(np.ones(100, dtype=int))

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            t1_monobit_test(np.full(20_000, 2))

    def test_invalid_shift_rejected(self, unbiased_bits):
        with pytest.raises(ValueError):
            t5_autocorrelation_test(unbiased_bits, shift=0)

    def test_result_truthiness(self, unbiased_bits):
        assert bool(t1_monobit_test(unbiased_bits)) is True


class TestBatchedRows:
    """(B, n) inputs: per-row results equal the scalar test of each row."""

    @pytest.fixture
    def bit_rows(self, rng):
        # Row 0 ideal, row 1 biased, row 2 sticky: mixed verdicts on purpose.
        ideal = rng.integers(0, 2, size=30_000)
        biased = (rng.random(30_000) < 0.7).astype(int)
        sticky = np.cumsum(rng.random(30_000) < 0.04) % 2
        return np.stack([ideal, biased, sticky])

    @pytest.mark.parametrize(
        "test",
        [t1_monobit_test, t2_poker_test, t3_runs_test, t4_long_run_test,
         t5_autocorrelation_test],
    )
    def test_each_test_matches_scalar_per_row(self, bit_rows, test):
        batched = test(bit_rows)
        assert len(batched) == 3
        for row in range(3):
            assert batched[row] == test(bit_rows[row])

    def test_t0_batched_matches_scalar(self, rng):
        rows = rng.integers(0, 2, size=(2, (1 << 16) * 48))
        rows[1, :96] = np.tile(rows[1, 96:144], 2)  # force repeats in row 1
        batched = t0_disjointness_test(rows)
        for row in range(2):
            assert batched[row] == t0_disjointness_test(rows[row])
        assert batched[0].passed and not batched[1].passed

    def test_procedure_a_batched_returns_per_row_batteries(self, bit_rows):
        per_row = procedure_a(bit_rows)
        assert len(per_row) == 3 and all(len(row) == 5 for row in per_row)
        for row in range(3):
            assert per_row[row] == procedure_a(bit_rows[row])
        from repro.ais31.procedure_a import rows_passed

        verdicts = rows_passed(per_row)
        assert verdicts[0] and not verdicts[1] and not verdicts[2]

    def test_three_dimensional_input_rejected(self):
        with pytest.raises(ValueError):
            t1_monobit_test(np.zeros((2, 2, 20_000), dtype=int))
