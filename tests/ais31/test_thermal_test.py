"""Tests for the paper's proposed embedded thermal-noise online test."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ais31.thermal_test import (
    ThermalNoiseOnlineTest,
    characterize_reference,
)
from repro.attacks.frequency_injection import (
    FrequencyInjectionAttack,
    InjectionParameters,
)
from repro.oscillator.period_model import JitteryClock
from repro.phase.psd import PhaseNoisePSD

#: A fast (strongly jittery) oscillator pair so the counter quantisation does
#: not mask the thermal term at moderate accumulation lengths.
B_THERMAL = 5e4
F0 = 1e8


@pytest.fixture
def oscillator_pair():
    psd = PhaseNoisePSD(b_thermal_hz=B_THERMAL, b_flicker_hz2=5e7)
    rng = np.random.default_rng(21)
    return (
        JitteryClock(F0, psd, rng=rng),
        JitteryClock(F0, psd, rng=rng),
    )


class TestConfigurationValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ThermalNoiseOnlineTest(reference_b_thermal_hz=0.0)
        with pytest.raises(ValueError):
            ThermalNoiseOnlineTest(reference_b_thermal_hz=100.0, minimum_ratio=1.5)
        with pytest.raises(ValueError):
            ThermalNoiseOnlineTest(
                reference_b_thermal_hz=100.0, accumulation_lengths=(100, 100)
            )
        with pytest.raises(ValueError):
            ThermalNoiseOnlineTest(reference_b_thermal_hz=100.0, n_windows=2)

    def test_lengths_are_sorted(self):
        test = ThermalNoiseOnlineTest(
            reference_b_thermal_hz=100.0, accumulation_lengths=(4096, 512)
        )
        assert test.accumulation_lengths == (512, 4096)


class TestEstimation:
    def test_estimate_close_to_reference_on_healthy_pair(self, oscillator_pair):
        osc1, osc2 = oscillator_pair
        online = ThermalNoiseOnlineTest(
            reference_b_thermal_hz=2.0 * B_THERMAL,
            accumulation_lengths=(2048, 8192),
            n_windows=192,
        )
        estimate = online.estimate_b_thermal(osc1, osc2)
        assert estimate == pytest.approx(2.0 * B_THERMAL, rel=0.5)

    def test_healthy_pair_passes(self, oscillator_pair):
        osc1, osc2 = oscillator_pair
        online = ThermalNoiseOnlineTest(
            reference_b_thermal_hz=2.0 * B_THERMAL,
            minimum_ratio=0.4,
            accumulation_lengths=(2048, 8192),
            n_windows=192,
        )
        result = online.execute(osc1, osc2)
        assert result.passed
        assert result.ratio > 0.4

    def test_locked_oscillators_fail(self, oscillator_pair):
        """A strong frequency-injection lock (which couples into both rings,
        e.g. through the shared supply) suppresses the exploitable thermal
        jitter and must trip the test — the scenario the paper's conclusion
        targets."""
        osc1, osc2 = oscillator_pair
        parameters = InjectionParameters(
            injection_frequency_hz=F0, locking_strength=0.97
        )
        attacked_1 = FrequencyInjectionAttack(
            osc1, parameters, rng=np.random.default_rng(5)
        )
        attacked_2 = FrequencyInjectionAttack(
            osc2, parameters, rng=np.random.default_rng(6)
        )
        online = ThermalNoiseOnlineTest(
            reference_b_thermal_hz=2.0 * B_THERMAL,
            minimum_ratio=0.4,
            accumulation_lengths=(2048, 8192),
            n_windows=192,
        )
        result = online.execute(attacked_1, attacked_2)
        assert not result.passed
        assert result.ratio < 0.4


class TestCharacterisation:
    def test_characterize_reference_recovers_relative_b_thermal(self, oscillator_pair):
        osc1, osc2 = oscillator_pair
        report = characterize_reference(
            osc1, osc2, n_sweep=[1024, 2048, 4096, 8192], n_windows=128
        )
        assert report.b_thermal_hz == pytest.approx(2.0 * B_THERMAL, rel=0.5)
