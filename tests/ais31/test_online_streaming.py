"""Streaming online tests: chunked benches and the sigma^2_N thermal test."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ais31.online import (
    monobit_online_test,
    thermal_variance_online_test,
)
from repro.engine.batch import BatchedOscillatorEnsemble
from repro.paper import PAPER_F0_HZ, paper_phase_noise_psd
from repro.phase.psd import PhaseNoisePSD

F0 = PAPER_F0_HZ


def chunked_jitter(psd, total: int, chunk: int, seed: int):
    """Yield a B=1 jitter record in chunks (the streaming-bench input)."""
    ensemble = BatchedOscillatorEnsemble(F0, psd, batch_size=1, seed=seed)
    produced = 0
    while produced < total:
        step = min(chunk, total - produced)
        yield ensemble.jitter(step)[0]
        produced += step


class TestRunStream:
    def test_matches_run_for_any_chunking(self):
        bench = monobit_online_test(block_size_bits=20_000)
        bits = np.random.default_rng(3).integers(0, 2, 65_000)
        reference = bench.run(bits)
        chunked = bench.run_stream(
            [bits[:7000], bits[7000:7001], bits[7001:40_000], bits[40_000:]]
        )
        assert chunked.n_blocks == reference.n_blocks == 3
        for a, b in zip(reference.block_results, chunked.block_results):
            assert a.passed == b.passed
            assert a.statistic == b.statistic

    def test_memory_stays_bounded_by_block(self):
        bench = monobit_online_test(block_size_bits=20_000)
        rng = np.random.default_rng(5)

        def chunks():
            for _ in range(8):
                yield rng.integers(0, 2, 10_000)

        report = bench.run_stream(chunks())
        assert report.n_blocks == 4

    def test_too_short_stream_raises(self):
        bench = monobit_online_test(block_size_bits=20_000)
        with pytest.raises(ValueError, match="shorter than one block"):
            bench.run_stream([np.zeros(100, dtype=int)])

    def test_batched_chunks_are_rejected(self):
        """Regression: (B, k) chunks must not be silently interleaved."""
        bench = monobit_online_test(block_size_bits=20_000)
        with pytest.raises(ValueError, match="1-D chunks"):
            bench.run_stream([np.zeros((2, 30_000), dtype=int)])


class TestThermalVarianceOnlineTest:
    def test_healthy_generator_passes(self):
        psd = paper_phase_noise_psd()
        bench = thermal_variance_online_test(psd.b_thermal_hz, F0)
        report = bench.run_stream(chunked_jitter(psd, 4 * 8192, 3000, seed=11))
        assert report.n_blocks == 4
        assert not report.alarm
        # The blockwise two-point estimates recover b_th to ~10-15%.
        estimates = [result.statistic for result in report.block_results]
        assert np.median(estimates) == pytest.approx(psd.b_thermal_hz, rel=0.25)

    def test_attacked_generator_alarms(self):
        healthy = paper_phase_noise_psd()
        attacked = PhaseNoisePSD(
            b_thermal_hz=healthy.b_thermal_hz * 0.05,
            b_flicker_hz2=healthy.b_flicker_hz2,
        )
        bench = thermal_variance_online_test(healthy.b_thermal_hz, F0)
        report = bench.run_stream(
            chunked_jitter(attacked, 4 * 8192, 3000, seed=11)
        )
        assert report.n_failures == report.n_blocks == 4
        assert report.alarm
        assert report.first_failure_block == 0

    def test_streamed_report_matches_one_shot_run(self):
        psd = paper_phase_noise_psd()
        bench = thermal_variance_online_test(psd.b_thermal_hz, F0)
        record = BatchedOscillatorEnsemble(
            F0, psd, batch_size=1, seed=21
        ).jitter(3 * 8192)[0]
        reference = bench.run(record)
        chunked = bench.run_stream(
            [record[:5000], record[5000:13_000], record[13_000:]]
        )
        assert [r.statistic for r in reference.block_results] == [
            r.statistic for r in chunked.block_results
        ]

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="reference"):
            thermal_variance_online_test(0.0, F0)
        with pytest.raises(ValueError, match="ratio"):
            thermal_variance_online_test(276.0, F0, minimum_ratio=1.5)
        with pytest.raises(ValueError, match="accumulation"):
            thermal_variance_online_test(276.0, F0, accumulation_lengths=(8, 8))
        with pytest.raises(ValueError, match="block_size_samples"):
            thermal_variance_online_test(276.0, F0, block_size_samples=256)
        with pytest.raises(ValueError, match="f0"):
            thermal_variance_online_test(276.0, 0.0)
        with pytest.raises(ValueError, match="min_realizations"):
            thermal_variance_online_test(276.0, F0, min_realizations=0)

    def test_minimal_block_still_yields_both_points(self):
        """Regression: the guard must leave >= 2 windows at N2 per block.

        With min_realizations=1 the old 2*N2*min_realizations floor admitted
        blocks whose N2 point the estimator drops (count < 2), crashing the
        two-point solve with a KeyError on the first block.
        """
        with pytest.raises(ValueError, match="block_size_samples"):
            thermal_variance_online_test(
                276.0, F0, block_size_samples=256, min_realizations=1
            )
        bench = thermal_variance_online_test(
            276.0, F0, block_size_samples=257, min_realizations=1
        )
        psd = paper_phase_noise_psd()
        report = bench.run_stream(chunked_jitter(psd, 2 * 257, 100, seed=4))
        assert report.n_blocks == 2
