"""Tests for the online-test framework and the total-failure test."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ais31.online import (
    OnlineTestBench,
    autocorrelation_online_test,
    monobit_online_test,
    total_failure_test,
)
from repro.ais31.procedure_a import t1_monobit_test


class TestTotalFailureTest:
    def test_passes_on_ideal_bits(self, unbiased_bits):
        assert total_failure_test(unbiased_bits[:10_000]).passed

    def test_fails_on_stuck_source(self):
        bits = np.concatenate([np.random.default_rng(0).integers(0, 2, 100), np.ones(200, dtype=int)])
        result = total_failure_test(bits, max_run_length=64)
        assert not result.passed
        assert result.statistic >= 200

    def test_threshold_is_respected(self):
        bits = np.concatenate([np.zeros(50, dtype=int), np.ones(1, dtype=int)])
        assert total_failure_test(bits, max_run_length=64).passed
        assert not total_failure_test(bits, max_run_length=40).passed

    def test_validation(self):
        with pytest.raises(ValueError):
            total_failure_test(np.array([], dtype=int))
        with pytest.raises(ValueError):
            total_failure_test(np.ones(10, dtype=int), max_run_length=1)


class TestOnlineTestBench:
    def test_healthy_stream_raises_no_alarm(self, unbiased_bits):
        bench = monobit_online_test()
        report = bench.run(unbiased_bits)
        assert report.n_blocks == unbiased_bits.size // 20_000
        assert report.n_failures <= 1
        assert not report.alarm

    def test_biased_stream_raises_alarm(self, biased_bits):
        bench = monobit_online_test()
        report = bench.run(biased_bits)
        assert report.alarm
        assert report.first_failure_block == 0

    def test_alarm_threshold(self, biased_bits, unbiased_bits):
        mixed = np.concatenate([unbiased_bits[:40_000], biased_bits[:20_000]])
        bench = OnlineTestBench(
            block_test=t1_monobit_test, block_size_bits=20_000, alarm_threshold=2
        )
        report = bench.run(mixed)
        assert report.n_failures == 1
        assert not report.alarm

    def test_autocorrelation_bench(self, unbiased_bits):
        bench = autocorrelation_online_test()
        report = bench.run(unbiased_bits[:100_000])
        assert report.n_blocks == 10
        assert not report.alarm

    def test_first_failure_none_when_all_pass(self, unbiased_bits):
        report = monobit_online_test().run(unbiased_bits[:40_000])
        assert report.first_failure_block is None

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineTestBench(block_test=t1_monobit_test, block_size_bits=0)
        with pytest.raises(ValueError):
            OnlineTestBench(
                block_test=t1_monobit_test, block_size_bits=100, alarm_threshold=0
            )
        bench = monobit_online_test()
        with pytest.raises(ValueError):
            bench.run(np.ones(100, dtype=int))
