"""Tests for the AIS31 Procedure B battery (T6 - T8, Coron entropy estimator)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ais31.procedure_b import (
    coron_entropy_estimate,
    procedure_b,
    t6_uniform_distribution_test,
    t7_comparative_test,
    t8_entropy_test,
)


class TestT6:
    def test_passes_on_ideal_bits(self, unbiased_bits):
        assert t6_uniform_distribution_test(unbiased_bits).passed

    def test_fails_on_biased_bits(self, biased_bits):
        assert not t6_uniform_distribution_test(biased_bits).passed

    def test_fails_on_markov_bits(self, rng):
        bits = np.empty(120_000, dtype=int)
        bits[0] = 0
        draws = rng.random(bits.size)
        for index in range(1, bits.size):
            bits[index] = bits[index - 1] if draws[index] < 0.6 else 1 - bits[index - 1]
        assert not t6_uniform_distribution_test(bits).passed

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            t6_uniform_distribution_test(np.ones(1000, dtype=int))


class TestT7:
    def test_passes_on_ideal_bits(self, unbiased_bits):
        assert t7_comparative_test(unbiased_bits).passed

    def test_fails_on_history_dependent_bits(self, rng):
        """Bits whose distribution depends on the previous 2-bit history."""
        bits = np.empty(150_000, dtype=int)
        bits[:2] = [0, 1]
        draws = rng.random(bits.size)
        for index in range(2, bits.size):
            history = bits[index - 2] * 2 + bits[index - 1]
            probability_one = [0.3, 0.5, 0.5, 0.7][history]
            bits[index] = 1 if draws[index] < probability_one else 0
        assert not t7_comparative_test(bits).passed


class TestCoronEstimatorAndT8:
    def test_ideal_bits_reach_full_entropy(self, unbiased_bits):
        estimate = coron_entropy_estimate(unbiased_bits, block_size=8)
        assert estimate / 8.0 == pytest.approx(1.0, abs=0.01)

    def test_t8_passes_on_ideal_bits(self, unbiased_bits):
        result = t8_entropy_test(unbiased_bits)
        assert result.passed
        assert result.statistic > 0.997

    def test_t8_fails_on_biased_bits(self, biased_bits):
        result = t8_entropy_test(biased_bits)
        assert not result.passed
        assert result.statistic < 0.95

    def test_estimator_tracks_true_entropy_of_biased_source(self, biased_bits):
        from repro.trng.entropy import binary_entropy

        estimate = coron_entropy_estimate(biased_bits, block_size=8) / 8.0
        assert estimate == pytest.approx(binary_entropy(0.7), abs=0.03)

    def test_too_short_sequence_rejected(self):
        with pytest.raises(ValueError):
            coron_entropy_estimate(np.ones(100, dtype=int))


class TestBattery:
    def test_procedure_b_on_ideal_bits(self, unbiased_bits):
        results = procedure_b(unbiased_bits)
        assert len(results) == 3
        assert all(result.passed for result in results)

    def test_procedure_b_flags_bias(self, biased_bits):
        results = procedure_b(biased_bits)
        assert not all(result.passed for result in results)


class TestBatchedRows:
    """(B, n) inputs: per-row results equal the scalar test of each row."""

    @pytest.fixture
    def bit_rows(self, rng):
        ideal = rng.integers(0, 2, size=130_000)
        biased = (rng.random(130_000) < 0.7).astype(int)
        return np.stack([ideal, biased])

    @pytest.mark.parametrize(
        "test", [t6_uniform_distribution_test, t7_comparative_test, t8_entropy_test]
    )
    def test_each_test_matches_scalar_per_row(self, bit_rows, test):
        batched = test(bit_rows)
        assert len(batched) == 2
        for row in range(2):
            scalar = test(bit_rows[row])
            assert batched[row].passed == scalar.passed
            assert batched[row].statistic == pytest.approx(
                scalar.statistic, rel=1e-12
            )

    def test_coron_estimate_matches_scalar_per_row(self, bit_rows):
        batched = coron_entropy_estimate(bit_rows)
        for row in range(2):
            assert batched[row] == coron_entropy_estimate(bit_rows[row])

    def test_procedure_b_batched_verdicts(self, bit_rows):
        per_row = procedure_b(bit_rows)
        assert len(per_row) == 2 and all(len(row) == 3 for row in per_row)
        assert all(result.passed for result in per_row[0])
        assert not all(result.passed for result in per_row[1])
