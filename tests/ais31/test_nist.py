"""Tests for the NIST SP 800-22-style complementary tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ais31.nist import (
    approximate_entropy_test,
    cumulative_sums_test,
    frequency_within_block_test,
    nist_battery,
    runs_test,
    serial_test,
)


class TestOnIdealBits:
    def test_frequency_within_block_passes(self, unbiased_bits):
        assert frequency_within_block_test(unbiased_bits[:100_000]).passed

    def test_runs_passes(self, unbiased_bits):
        assert runs_test(unbiased_bits[:100_000]).passed

    def test_cusum_passes(self, unbiased_bits):
        assert cumulative_sums_test(unbiased_bits[:100_000]).passed

    def test_serial_passes(self, unbiased_bits):
        assert serial_test(unbiased_bits[:100_000]).passed

    def test_approximate_entropy_passes(self, unbiased_bits):
        assert approximate_entropy_test(unbiased_bits[:100_000]).passed

    def test_battery_passes(self, unbiased_bits):
        results = nist_battery(unbiased_bits[:100_000])
        assert len(results) == 5
        assert all(result.passed for result in results)

    def test_p_values_look_uniformish(self, rng):
        """P-values of independent ideal blocks should not cluster near 0."""
        p_values = []
        for _round in range(10):
            block = rng.integers(0, 2, size=20_000)
            p_values.append(frequency_within_block_test(block).statistic)
        assert np.mean(p_values) > 0.2


class TestOnDefectiveBits:
    def test_frequency_within_block_fails_on_bias(self, biased_bits):
        assert not frequency_within_block_test(biased_bits[:100_000]).passed

    def test_runs_fails_on_sticky_bits(self, rng):
        bits = np.empty(100_000, dtype=int)
        bits[0] = 0
        draws = rng.random(bits.size)
        for index in range(1, bits.size):
            bits[index] = bits[index - 1] if draws[index] < 0.7 else 1 - bits[index - 1]
        assert not runs_test(bits).passed

    def test_cusum_fails_on_drifting_bias(self, rng):
        probabilities = np.linspace(0.45, 0.55, 100_000)
        bits = (rng.random(100_000) < probabilities).astype(int)
        result = cumulative_sums_test(bits)
        # A slow drift inflates the cumulative excursion.
        assert result.statistic < 0.2

    def test_serial_fails_on_periodic_pattern(self):
        bits = np.tile([0, 1, 1, 0], 25_000)
        assert not serial_test(bits).passed

    def test_approximate_entropy_fails_on_periodic_pattern(self):
        bits = np.tile([0, 0, 1, 1, 0, 1], 20_000)
        assert not approximate_entropy_test(bits).passed

    def test_runs_pretest_catches_gross_bias(self, biased_bits):
        result = runs_test(biased_bits[:100_000])
        assert not result.passed
        assert "pre-test" in result.details


class TestValidation:
    def test_short_sequences_rejected(self):
        with pytest.raises(ValueError):
            frequency_within_block_test(np.ones(10, dtype=int))

    def test_invalid_block_size(self, unbiased_bits):
        with pytest.raises(ValueError):
            frequency_within_block_test(unbiased_bits[:1000], block_size=4)

    def test_invalid_pattern_lengths(self, unbiased_bits):
        with pytest.raises(ValueError):
            serial_test(unbiased_bits[:1000], pattern_length=1)
        with pytest.raises(ValueError):
            approximate_entropy_test(unbiased_bits[:1000], pattern_length=0)

    def test_constant_sequence_fails_cusum(self):
        result = cumulative_sums_test(np.ones(1000, dtype=int))
        assert not result.passed
