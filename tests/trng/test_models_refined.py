"""Tests for the refined (flicker-aware) entropy model — the paper's security message."""

from __future__ import annotations

import numpy as np
import pytest

from repro.paper import (
    PAPER_B_FLICKER_HZ2,
    PAPER_B_THERMAL_HZ,
    PAPER_F0_HZ,
    PAPER_RATIO_CONSTANT_K,
)
from repro.phase.psd import PhaseNoisePSD
from repro.trng.models.refined import RefinedEntropyModel


@pytest.fixture(scope="module")
def model() -> RefinedEntropyModel:
    return RefinedEntropyModel(
        PAPER_F0_HZ, PhaseNoisePSD(PAPER_B_THERMAL_HZ, PAPER_B_FLICKER_HZ2)
    )


class TestRefinedPrediction:
    def test_thermal_per_period_variance(self, model):
        assert np.sqrt(model.thermal_per_period_variance_s2) == pytest.approx(
            15.89e-12, rel=1e-3
        )

    def test_entropy_monotone_in_accumulation(self, model):
        assert model.entropy_per_bit(100_000) > model.entropy_per_bit(10_000)

    def test_entropy_in_unit_interval(self, model):
        for n in (1, 100, 10_000, 1_000_000):
            assert 0.0 <= model.entropy_per_bit(n) <= 1.0

    def test_accumulation_for_entropy(self, model):
        n = model.accumulation_for_entropy(0.997)
        assert model.entropy_per_bit(n) >= 0.997

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.entropy_per_bit(0)
        with pytest.raises(ValueError):
            RefinedEntropyModel(0.0, PhaseNoisePSD(1.0, 1.0))


class TestNaiveVsRefined:
    def test_naive_per_period_variance_is_inflated_by_flicker(self, model):
        """Calibrating over N_cal periods inflates the variance by 1 + N_cal/K."""
        calibration = 50_000
        naive = model.naive_per_period_variance_s2(calibration)
        thermal = model.thermal_per_period_variance_s2
        expected_inflation = 1.0 + calibration / PAPER_RATIO_CONSTANT_K
        assert naive / thermal == pytest.approx(expected_inflation, rel=1e-6)

    def test_naive_entropy_never_below_refined(self, model):
        """The independence assumption can only over-promise entropy."""
        for n in (1_000, 10_000, 50_000, 200_000):
            comparison = model.compare(n, calibration_length=100_000)
            assert comparison.naive_entropy >= comparison.refined_entropy - 1e-12

    def test_overestimation_is_substantial_in_the_transition_region(self, model):
        """Around the accumulation lengths where the refined model says the
        entropy is not yet sufficient, the naive model (calibrated with a long,
        flicker-contaminated measurement) claims it already is — the paper's
        'security was much lower than expected' scenario."""
        comparison = model.compare(20_000, calibration_length=200_000)
        assert comparison.refined_entropy < 0.97
        assert comparison.naive_entropy > 0.99
        assert comparison.overestimation > 0.03

    def test_short_calibration_converges_to_refined(self, model):
        """If the calibration window is short (N_cal << K), flicker has not yet
        kicked in and the naive and refined models agree."""
        comparison = model.compare(100, calibration_length=10)
        assert comparison.naive_entropy == pytest.approx(
            comparison.refined_entropy, abs=1e-3
        )

    def test_default_calibration_uses_accumulation_length(self, model):
        explicit = model.naive_entropy_per_bit(5_000, calibration_length=5_000)
        implicit = model.naive_entropy_per_bit(5_000)
        assert implicit == pytest.approx(explicit)

    def test_naive_quality_factor_validation(self, model):
        with pytest.raises(ValueError):
            model.naive_per_period_variance_s2(0)
        with pytest.raises(ValueError):
            model.naive_entropy_per_bit(0)
