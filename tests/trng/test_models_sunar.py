"""Tests for the Sunar-Martin-Stinson many-ring XOR TRNG model."""

from __future__ import annotations

import pytest

from repro.trng.models.sunar import SunarModel


@pytest.fixture
def model() -> SunarModel:
    return SunarModel(
        n_rings=114,
        ring_frequency_hz=400e6,
        sampling_frequency_hz=1e6,
        relative_jitter_std=0.01,
    )


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            SunarModel(0, 400e6, 1e6, 0.01)
        with pytest.raises(ValueError):
            SunarModel(10, 0.0, 1e6, 0.01)
        with pytest.raises(ValueError):
            SunarModel(10, 1e6, 2e6, 0.01)
        with pytest.raises(ValueError):
            SunarModel(10, 400e6, 1e6, -0.1)

    def test_urn_count_is_odd_and_tracks_frequency_ratio(self, model):
        assert model.n_urns % 2 == 1
        assert model.n_urns == pytest.approx(model.transitions_per_sample, rel=0.01)


class TestProbabilities:
    def test_hit_probability_bounds(self, model):
        assert 0.0 < model.urn_hit_probability() < 1.0

    def test_zero_jitter_gives_zero_hit_probability(self, model):
        frozen = model.with_jitter(0.0)
        assert frozen.urn_hit_probability() == 0.0
        assert frozen.probability_all_urns_filled() == 0.0
        assert frozen.entropy_lower_bound() == 0.0

    def test_fill_probability_increases_with_rings(self, model):
        small = SunarModel(50, 400e6, 1e6, 0.01)
        large = SunarModel(5000, 400e6, 1e6, 0.01)
        assert large.probability_all_urns_filled() >= small.probability_all_urns_filled()

    def test_fill_probability_increases_with_jitter(self, model):
        quiet = model.with_jitter(0.001)
        noisy = model.with_jitter(0.1)
        assert noisy.probability_all_urns_filled() >= quiet.probability_all_urns_filled()

    def test_bias_bound_consistency(self, model):
        assert model.output_bias_bound() == pytest.approx(
            0.5 * (1.0 - model.probability_all_urns_filled())
        )
        assert 0.0 <= model.entropy_lower_bound() <= 1.0


class TestDesignHelpers:
    def test_rings_needed_achieves_target(self, model):
        target = 0.99
        needed = model.rings_needed(target)
        sized = SunarModel(
            needed, model.ring_frequency_hz, model.sampling_frequency_hz, 0.01
        )
        assert sized.probability_all_urns_filled() >= target

    def test_rings_needed_monotone_in_target(self, model):
        assert model.rings_needed(0.999) >= model.rings_needed(0.9)

    def test_rings_needed_validation(self, model):
        with pytest.raises(ValueError):
            model.rings_needed(1.0)
        with pytest.raises(ValueError):
            model.with_jitter(0.0).rings_needed(0.9)

    def test_refined_jitter_requires_more_rings(self, model):
        """The paper's point applied to this design: if the classical
        evaluation overstated the usable jitter (flicker included), the ring
        count it certifies is too small once only thermal jitter is counted."""
        classical = model.with_jitter(0.02)   # total (thermal + flicker) jitter
        refined = model.with_jitter(0.005)    # thermal-only jitter
        assert refined.rings_needed(0.99) > classical.rings_needed(0.99)
