"""Tests for the Bernard et al. coherent-sampling (PLL-TRNG) model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.oscillator.pll import PLLConfiguration
from repro.trng.models.bernard_pll import CoherentSamplingModel, sweep_jitter


@pytest.fixture
def configuration() -> PLLConfiguration:
    return PLLConfiguration(
        multiplication_factor=157, division_factor=8, output_jitter_std_s=15e-12
    )


class TestGeometry:
    def test_phase_positions_cover_one_period(self, configuration):
        model = CoherentSamplingModel(configuration, 125e6)
        positions = model.phase_positions_s
        assert positions.size == 8
        assert np.all(positions < model.output_period_s)
        assert np.all(np.diff(positions) > 0.0)

    def test_output_period(self, configuration):
        model = CoherentSamplingModel(configuration, 125e6)
        assert model.output_period_s == pytest.approx(1.0 / (125e6 * 157 / 8))

    def test_validation(self, configuration):
        with pytest.raises(ValueError):
            CoherentSamplingModel(configuration, 0.0)
        with pytest.raises(ValueError):
            CoherentSamplingModel(configuration, 125e6, duty_cycle=0.0)


class TestProbabilities:
    def test_probabilities_in_unit_interval(self, configuration):
        model = CoherentSamplingModel(configuration, 125e6)
        probabilities = model.probability_of_one()
        assert np.all(probabilities >= 0.0)
        assert np.all(probabilities <= 1.0)

    def test_zero_jitter_gives_deterministic_samples(self):
        configuration = PLLConfiguration(157, 8, 0.0)
        model = CoherentSamplingModel(configuration, 125e6)
        probabilities = model.probability_of_one()
        assert set(np.round(probabilities, 9)) <= {0.0, 1.0}
        assert model.entropy_per_pattern() == pytest.approx(0.0, abs=1e-9)
        assert model.sensitive_samples() == 0

    def test_mean_probability_tracks_duty_cycle(self, configuration):
        model = CoherentSamplingModel(configuration, 125e6, duty_cycle=0.5)
        assert np.mean(model.probability_of_one()) == pytest.approx(0.5, abs=0.1)

    def test_sensitive_sample_count_grows_with_jitter(self):
        quiet = CoherentSamplingModel(PLLConfiguration(157, 8, 1e-12), 125e6)
        noisy = CoherentSamplingModel(PLLConfiguration(157, 8, 100e-12), 125e6)
        assert noisy.sensitive_samples() >= quiet.sensitive_samples()

    def test_sensitive_samples_validation(self, configuration):
        model = CoherentSamplingModel(configuration, 125e6)
        with pytest.raises(ValueError):
            model.sensitive_samples(probability_margin=0.7)


class TestEntropy:
    def test_entropy_per_pattern_grows_with_jitter(self):
        values = sweep_jitter(
            PLLConfiguration(157, 8, 1e-12),
            125e6,
            np.array([1e-12, 10e-12, 100e-12, 1e-9]),
        )
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_entropy_per_output_bit_bounded_by_one(self, configuration):
        model = CoherentSamplingModel(configuration, 125e6)
        assert 0.0 <= model.entropy_per_output_bit() <= 1.0

    def test_xor_compression_never_loses_to_single_best_sample(self, configuration):
        """The XOR of all samples is at least as entropic as the most random
        single sample (piling-up can only push the bias toward zero)."""
        model = CoherentSamplingModel(configuration, 125e6)
        from repro.trng.entropy import binary_entropy

        best_single = max(
            binary_entropy(float(p)) for p in model.probability_of_one()
        )
        assert model.entropy_per_output_bit() >= best_single - 1e-9

    def test_large_jitter_saturates_entropy(self):
        model = CoherentSamplingModel(PLLConfiguration(157, 8, 2e-9), 125e6)
        assert model.entropy_per_output_bit() > 0.99
