"""Tests for the elementary RO-TRNG (Fig. 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.phase.psd import PhaseNoisePSD
from repro.trng.entropy import shannon_entropy_per_bit
from repro.trng.ero_trng import EROTRNG, EROTRNGConfiguration
from repro.trng.postprocessing import von_neumann


@pytest.fixture
def strong_jitter_configuration() -> EROTRNGConfiguration:
    """A deliberately noisy design whose output should be close to ideal."""
    return EROTRNGConfiguration(
        f0_hz=103e6,
        oscillator_psd=PhaseNoisePSD(b_thermal_hz=5e4, b_flicker_hz2=0.0),
        divider=20_000,
        frequency_mismatch=1e-3,
    )


class TestConfiguration:
    def test_validation(self):
        psd = PhaseNoisePSD(100.0, 0.0)
        with pytest.raises(ValueError):
            EROTRNGConfiguration(0.0, psd, 100)
        with pytest.raises(ValueError):
            EROTRNGConfiguration(1e8, psd, 0)
        with pytest.raises(ValueError):
            EROTRNGConfiguration(1e8, psd, 100, frequency_mismatch=0.2)


class TestEROTRNG:
    def test_bit_generation_shape(self, strong_jitter_configuration, rng):
        trng = EROTRNG(strong_jitter_configuration, rng=rng)
        result = trng.generate_raw(256)
        assert result.bits.shape == (256,)
        assert result.sample_times_s.shape == (256,)

    def test_output_bit_rate(self, strong_jitter_configuration, rng):
        trng = EROTRNG(strong_jitter_configuration, rng=rng)
        expected = trng.sampling_oscillator.f0_hz / 20_000
        assert trng.output_bit_rate_hz == pytest.approx(expected)

    def test_relative_psd_combines_both_oscillators(self, strong_jitter_configuration, rng):
        trng = EROTRNG(strong_jitter_configuration, rng=rng)
        assert trng.relative_psd.b_thermal_hz == pytest.approx(1e5)

    def test_high_jitter_design_produces_nearly_ideal_bits(
        self, strong_jitter_configuration, rng
    ):
        """With a quality factor >> 1 the raw bits must be close to uniform."""
        trng = EROTRNG(strong_jitter_configuration, rng=rng)
        bits = trng.generate(4000)
        assert 0.44 < np.mean(bits) < 0.56
        assert shannon_entropy_per_bit(bits) > 0.98

    def test_low_jitter_design_produces_structured_bits(self, rng):
        """With almost no jitter the sampler tracks the deterministic beat."""
        configuration = EROTRNGConfiguration(
            f0_hz=103e6,
            oscillator_psd=PhaseNoisePSD(b_thermal_hz=0.5, b_flicker_hz2=0.0),
            divider=16,
            frequency_mismatch=1e-3,
        )
        trng = EROTRNG(configuration, rng=rng)
        bits = trng.generate(4000)
        # The sequence is dominated by the deterministic phase ramp: long runs.
        transitions = np.count_nonzero(np.diff(bits))
        assert transitions < 1500

    def test_postprocessor_is_applied(self, strong_jitter_configuration, rng):
        trng = EROTRNG(
            strong_jitter_configuration, rng=rng, postprocessor=von_neumann
        )
        output = trng.generate(2000)
        assert output.size < 2000

    def test_paper_reference_design_builds(self, rng):
        trng = EROTRNG.paper_reference_design(divider=5000, rng=rng)
        assert trng.configuration.f0_hz == pytest.approx(103e6)
        bits = trng.generate(64)
        assert bits.shape == (64,)
