"""Tests for the post-processing algorithms (von Neumann, XOR, parity, LFSR)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trng.postprocessing import (
    LFSRWhitener,
    bias,
    parity_filter,
    von_neumann,
    xor_decimation,
)


class TestVonNeumann:
    def test_mapping(self):
        bits = np.array([0, 1, 1, 0, 0, 0, 1, 1, 0, 1])
        np.testing.assert_array_equal(von_neumann(bits), [1, 0, 1])

    def test_removes_bias_of_independent_bits(self, biased_bits):
        corrected = von_neumann(biased_bits)
        assert abs(bias(corrected)) < 0.01
        assert corrected.size < biased_bits.size / 2

    def test_output_rate_for_unbiased_input(self, unbiased_bits):
        corrected = von_neumann(unbiased_bits[:100_000])
        # Acceptance probability of a pair is 1/2 for unbiased independent bits.
        assert corrected.size == pytest.approx(25_000, rel=0.05)

    def test_empty_and_odd_inputs(self):
        assert von_neumann(np.array([], dtype=int)).size == 0
        assert von_neumann(np.array([1])).size == 0

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            von_neumann(np.array([0, 2]))


class TestXorDecimation:
    def test_parity_of_blocks(self):
        bits = np.array([1, 1, 0, 1, 0, 0, 1, 0, 1])
        np.testing.assert_array_equal(xor_decimation(bits, 3), [0, 1, 0])

    def test_reduces_bias_per_piling_up_lemma(self, biased_bits):
        """XOR of k independent bits: P(1) = (1 - (1 - 2p)^k) / 2 (piling-up lemma)."""
        input_bias = bias(biased_bits)
        output = xor_decimation(biased_bits, 4)
        expected = -(((-2.0 * input_bias) ** 4) / 2.0)
        assert bias(output) == pytest.approx(expected, abs=0.01)
        assert abs(bias(output)) < abs(input_bias)

    def test_factor_one_is_identity(self, unbiased_bits):
        np.testing.assert_array_equal(
            xor_decimation(unbiased_bits[:100], 1), unbiased_bits[:100]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            xor_decimation(np.array([0, 1]), 0)

    def test_short_input(self):
        assert xor_decimation(np.array([1, 0]), 4).size == 0


class TestParityFilter:
    def test_sliding_parity(self):
        bits = np.array([1, 0, 1, 1])
        np.testing.assert_array_equal(parity_filter(bits, 2), [1, 1, 0])

    def test_output_length(self, unbiased_bits):
        output = parity_filter(unbiased_bits[:1000], 3)
        assert output.size == 998

    def test_order_one_is_identity(self):
        bits = np.array([1, 0, 0, 1])
        np.testing.assert_array_equal(parity_filter(bits, 1), bits)

    def test_validation(self):
        with pytest.raises(ValueError):
            parity_filter(np.array([0, 1]), 0)


class TestLFSRWhitener:
    def test_output_length_matches_input(self, unbiased_bits):
        whitener = LFSRWhitener(taps=[3, 1])
        output = whitener.process(unbiased_bits[:500])
        assert output.size == 500

    def test_whitener_reduces_bias(self, biased_bits):
        whitener = LFSRWhitener(taps=[16, 14, 13, 11])
        output = whitener.process(biased_bits[:50_000])
        assert abs(bias(output)) < abs(bias(biased_bits[:50_000]))

    def test_state_advances_between_calls(self):
        whitener = LFSRWhitener(taps=[4, 1])
        first = whitener.process(np.zeros(16, dtype=int))
        second = whitener.process(np.zeros(16, dtype=int))
        assert not np.array_equal(first, second) or whitener.state != 1

    def test_deterministic_for_same_seed_state(self):
        a = LFSRWhitener(taps=[8, 6, 5, 4], state=0xAB).process(np.ones(64, dtype=int))
        b = LFSRWhitener(taps=[8, 6, 5, 4], state=0xAB).process(np.ones(64, dtype=int))
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            LFSRWhitener(taps=[])
        with pytest.raises(ValueError):
            LFSRWhitener(taps=[0])
        with pytest.raises(ValueError):
            LFSRWhitener(taps=[3], state=0)


class TestBias:
    def test_values(self):
        assert bias(np.array([1, 1, 1, 1])) == pytest.approx(0.5)
        assert bias(np.array([0, 1, 0, 1])) == pytest.approx(0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bias(np.array([], dtype=int))
