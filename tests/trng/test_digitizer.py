"""Tests for the D flip-flop digitizer (AIS31 digitization block)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.oscillator.period_model import IdealClock, JitteryClock
from repro.phase.psd import PhaseNoisePSD
from repro.trng.digitizer import DFlipFlopSampler, square_wave_level


class TestSquareWaveLevel:
    def test_levels_of_a_regular_wave(self):
        edges = np.arange(0.0, 10.0, 1.0)
        samples = np.array([0.25, 0.75, 1.25, 1.75, 8.4, 8.6])
        levels = square_wave_level(samples, edges, duty_cycle=0.5)
        np.testing.assert_array_equal(levels, [1, 0, 1, 0, 1, 0])

    def test_duty_cycle_shifts_threshold(self):
        edges = np.arange(0.0, 4.0, 1.0)
        samples = np.array([0.6, 0.8])
        assert square_wave_level(samples, edges, duty_cycle=0.7).tolist() == [1, 0]

    def test_samples_outside_span_rejected(self):
        edges = np.arange(0.0, 4.0, 1.0)
        with pytest.raises(ValueError):
            square_wave_level(np.array([3.5]), edges)
        with pytest.raises(ValueError):
            square_wave_level(np.array([-0.1]), edges)

    def test_invalid_duty_cycle(self):
        edges = np.arange(0.0, 4.0, 1.0)
        with pytest.raises(ValueError):
            square_wave_level(np.array([0.5]), edges, duty_cycle=1.0)

    def test_needs_two_edges(self):
        with pytest.raises(ValueError):
            square_wave_level(np.array([0.5]), np.array([0.0]))


class TestDFlipFlopSampler:
    def test_bit_count_and_values(self, rng):
        psd = PhaseNoisePSD(276.0, 0.0)
        sampler = DFlipFlopSampler(
            JitteryClock(103e6, psd, rng=rng),
            JitteryClock(102.5e6, psd, rng=rng),
            divider=100,
        )
        result = sampler.sample(500)
        assert result.bits.shape == (500,)
        assert set(np.unique(result.bits)).issubset({0, 1})
        assert result.n_bits == 500

    def test_sampling_frequency_accounts_for_divider(self, rng):
        psd = PhaseNoisePSD(276.0, 0.0)
        sampler = DFlipFlopSampler(
            JitteryClock(103e6, psd, rng=rng),
            JitteryClock(103e6, psd, rng=rng),
            divider=64,
        )
        assert sampler.effective_sampling_frequency_hz == pytest.approx(103e6 / 64)

    def test_accumulation_ratio(self, rng):
        psd = PhaseNoisePSD(276.0, 0.0)
        sampler = DFlipFlopSampler(
            JitteryClock(103e6, psd, rng=rng),
            JitteryClock(103e6, psd, rng=rng),
            divider=10,
        )
        result = sampler.sample(50)
        assert result.accumulation_ratio == pytest.approx(10.0, rel=1e-6)

    def test_ideal_clocks_give_deterministic_bits(self):
        """Without jitter the sampled bits are a deterministic (repeatable) pattern."""
        sampler = DFlipFlopSampler(IdealClock(3.1e6), IdealClock(2e6), divider=1)
        first = sampler.sample(60).bits
        second = sampler.sample(60).bits
        np.testing.assert_array_equal(first, second)
        assert set(np.unique(first)).issubset({0, 1})

    def test_jitter_makes_bits_non_deterministic(self, rng):
        psd = PhaseNoisePSD(5000.0, 0.0)
        sampler = DFlipFlopSampler(
            JitteryClock(103e6, psd, rng=rng),
            JitteryClock(103e6 * 0.999, psd, rng=rng),
            divider=5000,
        )
        bits = sampler.sample(400).bits
        assert 0.1 < np.mean(bits) < 0.9

    def test_validation(self, rng):
        psd = PhaseNoisePSD(276.0, 0.0)
        clock = JitteryClock(103e6, psd, rng=rng)
        with pytest.raises(ValueError):
            DFlipFlopSampler(clock, clock, divider=0)
        with pytest.raises(ValueError):
            DFlipFlopSampler(clock, clock, duty_cycle=0.0)
        sampler = DFlipFlopSampler(clock, clock)
        with pytest.raises(ValueError):
            sampler.sample(0)


class TestSquareWaveLevelValidation:
    """Regression tests for the precise validation errors (ISSUE 2)."""

    def test_unsorted_edges_get_a_precise_error(self):
        """Unsorted edges used to surface as a misleading span failure."""
        edges = np.array([0.0, 2.0, 1.0, 3.0])
        with pytest.raises(ValueError, match="strictly increasing"):
            square_wave_level(np.array([0.5]), edges)

    def test_duplicate_edges_rejected(self):
        edges = np.array([0.0, 1.0, 1.0, 3.0])
        with pytest.raises(ValueError, match="strictly increasing"):
            square_wave_level(np.array([0.5]), edges)

    def test_duty_cycle_validated_before_arrays_are_touched(self):
        """An invalid duty cycle must win over (and not mask) bad arrays."""
        with pytest.raises(ValueError, match="duty cycle"):
            square_wave_level(
                np.array([0.5]), np.array([3.0, 2.0, 1.0]), duty_cycle=1.5
            )
        # Even un-array-able input: the duty check fires first.
        with pytest.raises(ValueError, match="duty cycle"):
            square_wave_level(None, None, duty_cycle=0.0)

    def test_sorted_edges_still_accepted(self):
        edges = np.arange(0.0, 5.0)
        levels = square_wave_level(np.array([0.25, 1.75]), edges)
        np.testing.assert_array_equal(levels, [1, 0])
