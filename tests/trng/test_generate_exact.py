"""Length-contract tests for EROTRNG.generate / generate_exact / stream_bits.

The satellite requirement: ``generate`` documents that a decimating
post-processor shrinks the output, and ``generate_exact`` always returns
exactly the requested number of post-processed bits, generating raw bits
chunkwise (O(chunk) memory).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.streaming import generate_bits_exact, stream_bits
from repro.paper import PAPER_F0_HZ
from repro.phase.psd import PhaseNoisePSD
from repro.trng.ero_trng import EROTRNG, EROTRNGConfiguration
from repro.trng.postprocessing import von_neumann, xor_decimation


def _make_trng(postprocessor=None, divider: int = 16, seed: int = 3) -> EROTRNG:
    configuration = EROTRNGConfiguration(
        f0_hz=PAPER_F0_HZ,
        oscillator_psd=PhaseNoisePSD(b_thermal_hz=276.04, b_flicker_hz2=0.0),
        divider=divider,
        frequency_mismatch=1e-3,
    )
    return EROTRNG(
        configuration,
        rng=np.random.default_rng(seed),
        postprocessor=postprocessor,
    )


class TestGenerateLengthContract:
    def test_generate_without_postprocessor_returns_n_bits(self):
        trng = _make_trng()
        assert trng.generate(257).size == 257

    def test_generate_with_decimator_returns_fewer_bits(self):
        trng = _make_trng(postprocessor=von_neumann)
        bits = trng.generate(1024)
        assert 0 < bits.size < 1024

    def test_generate_exact_without_postprocessor(self):
        trng = _make_trng()
        bits = trng.generate_exact(300)
        assert bits.size == 300
        assert set(np.unique(bits)).issubset({0, 1})

    @pytest.mark.parametrize(
        "postprocessor", [von_neumann, lambda bits: xor_decimation(bits, 4)]
    )
    def test_generate_exact_with_decimators(self, postprocessor):
        trng = _make_trng(postprocessor=postprocessor)
        bits = trng.generate_exact(500, chunk_bits=512)
        assert bits.size == 500

    def test_generate_exact_small_chunks(self):
        trng = _make_trng(postprocessor=von_neumann)
        assert trng.generate_exact(64, chunk_bits=128).size == 64

    def test_generate_exact_invalid_n_bits(self):
        trng = _make_trng()
        with pytest.raises(ValueError):
            trng.generate_exact(0)

    def test_pathological_postprocessor_raises(self):
        trng = _make_trng(postprocessor=lambda bits: bits[:0])
        with pytest.raises(RuntimeError, match="no bits"):
            trng.generate_exact(10, chunk_bits=32)


class TestStreamBits:
    def test_chunks_concatenate_to_exact_length(self):
        trng = _make_trng(postprocessor=von_neumann)
        chunks = list(stream_bits(trng, 400, chunk_bits=256))
        assert sum(chunk.size for chunk in chunks) == 400
        assert all(chunk.size > 0 for chunk in chunks)

    def test_generate_bits_exact_matches_requested_length(self):
        trng = _make_trng()
        assert generate_bits_exact(trng, 123).size == 123

    def test_validation(self):
        trng = _make_trng()
        with pytest.raises(ValueError):
            list(stream_bits(trng, 0))
        with pytest.raises(ValueError):
            list(stream_bits(trng, 10, chunk_bits=0))
