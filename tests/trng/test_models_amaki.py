"""Tests for the Amaki-style Markov-chain model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trng.models.amaki import AmakiMarkovModel


class TestTransitionKernel:
    def test_matrix_is_row_stochastic(self):
        model = AmakiMarkovModel(phase_step_fraction=0.31, jitter_std_fraction=0.03)
        matrix = model.transition_matrix()
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(matrix >= 0.0)

    def test_zero_jitter_gives_deterministic_transitions(self):
        model = AmakiMarkovModel(phase_step_fraction=0.25, jitter_std_fraction=0.0, n_bins=64)
        matrix = model.transition_matrix()
        np.testing.assert_allclose(matrix.max(axis=1), 1.0)

    def test_phase_step_wraps_modulo_one(self):
        a = AmakiMarkovModel(phase_step_fraction=0.3, jitter_std_fraction=0.02)
        b = AmakiMarkovModel(phase_step_fraction=1.3, jitter_std_fraction=0.02)
        np.testing.assert_allclose(a.transition_matrix(), b.transition_matrix())

    def test_validation(self):
        with pytest.raises(ValueError):
            AmakiMarkovModel(0.1, -0.1)
        with pytest.raises(ValueError):
            AmakiMarkovModel(0.1, 0.1, n_bins=4)
        with pytest.raises(ValueError):
            AmakiMarkovModel(0.1, 0.1, duty_cycle=0.0)


class TestStationaryBehaviour:
    def test_stationary_distribution_sums_to_one(self):
        model = AmakiMarkovModel(phase_step_fraction=0.31, jitter_std_fraction=0.05)
        distribution = model.stationary_distribution()
        assert distribution.sum() == pytest.approx(1.0)
        assert np.all(distribution >= 0.0)

    def test_large_jitter_gives_uniform_stationary_distribution(self):
        model = AmakiMarkovModel(phase_step_fraction=0.31, jitter_std_fraction=2.0)
        distribution = model.stationary_distribution()
        np.testing.assert_allclose(distribution, 1.0 / model.n_bins, rtol=1e-3)

    def test_probability_of_one_tracks_duty_cycle_for_large_jitter(self):
        model = AmakiMarkovModel(
            phase_step_fraction=0.1, jitter_std_fraction=2.0, duty_cycle=0.3
        )
        assert model.probability_of_one() == pytest.approx(0.3, abs=0.01)

    def test_entropy_increases_with_jitter(self):
        quiet = AmakiMarkovModel(phase_step_fraction=0.37, jitter_std_fraction=0.01)
        noisy = AmakiMarkovModel(phase_step_fraction=0.37, jitter_std_fraction=0.5)
        assert noisy.conditional_entropy_per_bit() > quiet.conditional_entropy_per_bit()

    def test_conditional_entropy_never_exceeds_marginal(self):
        model = AmakiMarkovModel(phase_step_fraction=0.31, jitter_std_fraction=0.08)
        assert model.conditional_entropy_per_bit() <= model.entropy_per_bit() + 1e-9


class TestSimulation:
    def test_simulated_bits_match_stationary_probability(self):
        model = AmakiMarkovModel(phase_step_fraction=0.31, jitter_std_fraction=0.3)
        bits = model.simulate_bits(20_000, rng=np.random.default_rng(3))
        assert np.mean(bits) == pytest.approx(model.probability_of_one(), abs=0.03)

    def test_simulation_validation(self):
        model = AmakiMarkovModel(phase_step_fraction=0.31, jitter_std_fraction=0.3)
        with pytest.raises(ValueError):
            model.simulate_bits(0)

    def test_bit_for_bin_scalar_and_array(self):
        model = AmakiMarkovModel(
            phase_step_fraction=0.1, jitter_std_fraction=0.1, n_bins=8, duty_cycle=0.5
        )
        assert model.bit_for_bin(0) == 1
        assert model.bit_for_bin(7) == 0
        bits = model.bit_for_bin(np.arange(8))
        assert bits.sum() == 4
