"""Tests for the Baudet-style (classical, independence-based) entropy model."""

from __future__ import annotations

import pytest

from repro.trng.models.baudet import (
    BaudetModel,
    bit_bias_upper_bound,
    entropy_from_worst_case_bias,
    entropy_lower_bound,
    quality_factor,
    required_quality_factor,
)


class TestQualityFactor:
    def test_definition(self):
        assert quality_factor(1e-18, 1e-8) == pytest.approx(1e-2)

    def test_validation(self):
        with pytest.raises(ValueError):
            quality_factor(-1.0, 1e-8)
        with pytest.raises(ValueError):
            quality_factor(1e-18, 0.0)


class TestBoundsBehaviour:
    def test_bias_decreases_with_quality(self):
        assert bit_bias_upper_bound(0.1) > bit_bias_upper_bound(0.5)

    def test_bias_is_capped_at_half(self):
        assert bit_bias_upper_bound(0.0) == 0.5

    def test_entropy_increases_with_quality(self):
        values = [entropy_lower_bound(q) for q in (0.01, 0.05, 0.1, 0.5, 1.0)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_entropy_bounds_are_in_unit_interval(self):
        for q in (0.0, 0.001, 0.01, 0.1, 1.0, 10.0):
            assert 0.0 <= entropy_lower_bound(q) <= 1.0

    def test_entropy_tends_to_one(self):
        assert entropy_lower_bound(1.0) > 0.999999

    def test_bias_based_entropy_is_more_pessimistic(self):
        """Plugging the worst-case bias into H() is more pessimistic than the
        dedicated lower bound (the bound accounts for the phase averaging)."""
        for q in (0.05, 0.1, 0.2, 0.5):
            assert entropy_from_worst_case_bias(q) <= entropy_lower_bound(q) + 1e-12

    def test_required_quality_inverts_bound(self):
        target = 0.997
        q = required_quality_factor(target)
        assert entropy_lower_bound(q) == pytest.approx(target, abs=1e-9)

    def test_required_quality_validation(self):
        with pytest.raises(ValueError):
            required_quality_factor(1.0)

    def test_negative_quality_rejected(self):
        with pytest.raises(ValueError):
            entropy_lower_bound(-0.1)
        with pytest.raises(ValueError):
            bit_bias_upper_bound(-0.1)


class TestBaudetModel:
    def test_accumulated_variance_is_linear(self):
        model = BaudetModel(103e6, (15.89e-12) ** 2)
        assert model.accumulated_variance(100) == pytest.approx(
            100 * (15.89e-12) ** 2
        )

    def test_entropy_grows_with_accumulation(self):
        model = BaudetModel(103e6, (15.89e-12) ** 2)
        assert model.entropy_per_bit(100_000) > model.entropy_per_bit(1_000)

    def test_accumulation_for_entropy_reaches_target(self):
        model = BaudetModel(103e6, (15.89e-12) ** 2)
        n = model.accumulation_for_entropy(0.997)
        assert model.entropy_per_bit(n) >= 0.997
        assert model.entropy_per_bit(max(n // 2, 1)) < 0.997

    def test_paper_scale_accumulation_requirement(self):
        """With sigma/T0 ~ 1.6 permille, reaching Q ~ 0.08 needs tens of
        thousands of periods — the order of magnitude practitioners use."""
        model = BaudetModel(103e6, (15.89e-12) ** 2)
        n = model.accumulation_for_entropy(0.997)
        assert 5_000 < n < 100_000

    def test_bias_bound_decreases_with_accumulation(self):
        model = BaudetModel(103e6, (15.89e-12) ** 2)
        assert model.bias_upper_bound(50_000) < model.bias_upper_bound(5_000)

    def test_validation(self):
        with pytest.raises(ValueError):
            BaudetModel(0.0, 1e-24)
        with pytest.raises(ValueError):
            BaudetModel(1e8, -1.0)
        model = BaudetModel(1e8, 1e-24)
        with pytest.raises(ValueError):
            model.accumulated_variance(0)
        with pytest.raises(ValueError):
            BaudetModel(1e8, 0.0).accumulation_for_entropy(0.9)
