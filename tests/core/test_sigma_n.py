"""Unit tests for the s_N statistic and the accumulated-variance curve (Eq. 4/6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sigma_n import (
    AccumulatedVarianceCurve,
    AccumulatedVariancePoint,
    accumulated_variance_curve,
    accumulation_weights,
    bienayme_prediction,
    default_n_sweep,
    s_n_realizations,
    sigma2_n_estimate,
)


class TestAccumulationWeights:
    def test_structure(self):
        weights = accumulation_weights(3)
        np.testing.assert_array_equal(weights, [-1, -1, -1, 1, 1, 1])

    def test_weights_sum_to_zero(self):
        assert accumulation_weights(7).sum() == 0.0

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            accumulation_weights(0)


class TestSNRealizations:
    def test_matches_direct_weighted_sum(self, rng):
        """The cumulative-sum implementation must equal the literal Eq. 4."""
        jitter = rng.normal(size=64)
        n = 5
        values = s_n_realizations(jitter, n)
        weights = accumulation_weights(n)
        for start in (0, 3, 20):
            direct = float(np.dot(weights, jitter[start : start + 2 * n]))
            assert values[start] == pytest.approx(direct, rel=1e-12, abs=1e-15)

    def test_number_of_overlapping_realizations(self, rng):
        jitter = rng.normal(size=100)
        assert s_n_realizations(jitter, 10).size == 100 - 20 + 1

    def test_non_overlapping_realizations(self, rng):
        jitter = rng.normal(size=100)
        values = s_n_realizations(jitter, 10, overlapping=False)
        assert values.size == 5  # floor((100 - 20 + 1) / 20) + 1 windows starting at multiples of 20

    def test_constant_offset_cancels(self, rng):
        """Adding a constant to every jitter value must not change s_N."""
        jitter = rng.normal(size=200)
        shifted = jitter + 123.456
        np.testing.assert_allclose(
            s_n_realizations(jitter, 7), s_n_realizations(shifted, 7), atol=1e-9
        )

    def test_linear_period_drift_gives_exact_offset(self):
        """A linear drift of the *period* (frequency ramp) yields s_N = slope * N^2.

        Only a constant period offset cancels exactly; a deterministic drift
        leaves a constant, predictable offset that the variance estimators
        remove by centring (see CounterCapture.sigma2_n).
        """
        slope = 1e-15
        trend = slope * np.arange(400, dtype=float)
        values = s_n_realizations(trend, 20)
        np.testing.assert_allclose(values, slope * 20**2, rtol=1e-9)

    def test_too_short_record_rejected(self, rng):
        with pytest.raises(ValueError):
            s_n_realizations(rng.normal(size=10), 6)

    def test_invalid_n_rejected(self, rng):
        with pytest.raises(ValueError):
            s_n_realizations(rng.normal(size=10), 0)

    def test_two_dimensional_input_is_batched(self, rng):
        """A (B, n) input is treated as B records; time is the last axis."""
        records = rng.normal(size=(3, 50))
        batched = s_n_realizations(records, 2)
        assert batched.shape == (3, 50 - 4 + 1)
        for row in range(3):
            np.testing.assert_array_equal(
                batched[row], s_n_realizations(records[row], 2)
            )

    def test_batched_rows_shorter_than_2n_rejected(self, rng):
        with pytest.raises(ValueError):
            s_n_realizations(rng.normal(size=(10, 2)), 2)

    def test_three_dimensional_input_rejected(self, rng):
        with pytest.raises(ValueError):
            s_n_realizations(rng.normal(size=(2, 10, 4)), 2)


class TestSigma2NEstimate:
    def test_iid_jitter_matches_bienayme(self, rng):
        """For independent jitter the estimate must match 2 N sigma^2 (Eq. 6)."""
        sigma = 2.5e-12
        jitter = rng.normal(0.0, sigma, size=100_000)
        for n in (1, 10, 50):
            estimate = sigma2_n_estimate(jitter, n)
            assert estimate == pytest.approx(
                bienayme_prediction(sigma**2, n), rel=0.08
            )

    def test_bienayme_prediction_validation(self):
        assert bienayme_prediction(2.0, 3) == pytest.approx(12.0)
        with pytest.raises(ValueError):
            bienayme_prediction(-1.0, 3)
        with pytest.raises(ValueError):
            bienayme_prediction(1.0, 0)

    def test_estimate_requires_enough_data(self, rng):
        with pytest.raises(ValueError):
            sigma2_n_estimate(rng.normal(size=4), 2)


class TestSweepAndCurve:
    def test_default_sweep_properties(self):
        sweep = default_n_sweep(1000)
        assert sweep[0] == 1
        assert sweep[-1] == 1000
        assert all(b > a for a, b in zip(sweep, sweep[1:]))

    def test_default_sweep_single_point(self):
        assert default_n_sweep(1) == [1]

    def test_default_sweep_validation(self):
        with pytest.raises(ValueError):
            default_n_sweep(0)

    def test_curve_from_record(self, rng):
        jitter = rng.normal(0.0, 1e-12, size=20_000)
        curve = accumulated_variance_curve(jitter, 100e6)
        assert curve.f0_hz == 100e6
        assert curve.n_values[0] == 1
        assert np.all(np.diff(curve.n_values) > 0)
        assert np.all(curve.sigma2_values_s2 > 0.0)

    def test_curve_normalisation_is_fig7_ordinate(self, rng):
        jitter = rng.normal(0.0, 1e-12, size=5_000)
        curve = accumulated_variance_curve(jitter, 100e6, n_sweep=[1, 2, 4])
        np.testing.assert_allclose(
            curve.normalized_sigma2_values, curve.sigma2_values_s2 * (100e6) ** 2
        )

    def test_explicit_sweep_respected(self, rng):
        jitter = rng.normal(0.0, 1e-12, size=10_000)
        curve = accumulated_variance_curve(jitter, 100e6, n_sweep=[3, 17, 101])
        np.testing.assert_array_equal(curve.n_values, [3, 17, 101])

    def test_points_with_too_few_realizations_skipped(self, rng):
        jitter = rng.normal(0.0, 1e-12, size=1_000)
        curve = accumulated_variance_curve(
            jitter, 100e6, n_sweep=[1, 10, 400], min_realizations=8
        )
        assert 400 not in curve.n_values

    def test_record_too_short_raises(self, rng):
        with pytest.raises(ValueError):
            accumulated_variance_curve(rng.normal(size=4), 100e6, n_sweep=[100])

    def test_curve_validation(self):
        point = AccumulatedVariancePoint(1, 1e-24, 100)
        with pytest.raises(ValueError):
            AccumulatedVarianceCurve(points=[point], f0_hz=0.0)
        with pytest.raises(ValueError):
            AccumulatedVarianceCurve(points=[], f0_hz=1e8)
