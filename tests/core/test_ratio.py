"""Unit tests for the r_N ratio and the independence threshold (paper Sec. III-E)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ratio import (
    independence_budget,
    independence_threshold,
    ratio_constant,
    thermal_ratio,
)
from repro.paper import (
    PAPER_B_FLICKER_HZ2,
    PAPER_B_THERMAL_HZ,
    PAPER_F0_HZ,
    PAPER_INDEPENDENCE_THRESHOLD_N,
    PAPER_RATIO_CONSTANT_K,
)
from repro.phase.psd import PhaseNoisePSD


@pytest.fixture(scope="module")
def paper_relative_psd() -> PhaseNoisePSD:
    return PhaseNoisePSD(PAPER_B_THERMAL_HZ, PAPER_B_FLICKER_HZ2)


class TestRatioConstant:
    def test_paper_value(self, paper_relative_psd):
        """K = b_th f0 / (4 ln2 b_fl) = 5354 for the paper's coefficients."""
        constant = ratio_constant(paper_relative_psd, PAPER_F0_HZ)
        assert constant == pytest.approx(PAPER_RATIO_CONSTANT_K, rel=1e-9)

    def test_no_flicker_gives_infinity(self):
        assert np.isinf(ratio_constant(PhaseNoisePSD(100.0, 0.0), 1e8))

    def test_invalid_f0(self, paper_relative_psd):
        with pytest.raises(ValueError):
            ratio_constant(paper_relative_psd, 0.0)


class TestThermalRatio:
    def test_paper_functional_form(self, paper_relative_psd):
        """r_N = 5354 / (5354 + N)."""
        for n in (1, 100, 281, 5354, 50_000):
            expected = PAPER_RATIO_CONSTANT_K / (PAPER_RATIO_CONSTANT_K + n)
            assert thermal_ratio(paper_relative_psd, PAPER_F0_HZ, n) == pytest.approx(
                expected, rel=1e-9
            )

    def test_ratio_is_monotonically_decreasing(self, paper_relative_psd):
        values = thermal_ratio(
            paper_relative_psd, PAPER_F0_HZ, np.array([1, 10, 100, 1000, 10000])
        )
        assert np.all(np.diff(values) < 0.0)

    def test_ratio_at_zero_is_one(self, paper_relative_psd):
        assert thermal_ratio(paper_relative_psd, PAPER_F0_HZ, 0) == pytest.approx(1.0)

    def test_ratio_is_half_at_k(self, paper_relative_psd):
        constant = ratio_constant(paper_relative_psd, PAPER_F0_HZ)
        assert thermal_ratio(
            paper_relative_psd, PAPER_F0_HZ, constant
        ) == pytest.approx(0.5)

    def test_pure_thermal_ratio_is_always_one(self):
        psd = PhaseNoisePSD(100.0, 0.0)
        values = thermal_ratio(psd, 1e8, np.array([1, 1000, 1_000_000]))
        np.testing.assert_allclose(values, 1.0)

    def test_negative_n_rejected(self, paper_relative_psd):
        with pytest.raises(ValueError):
            thermal_ratio(paper_relative_psd, PAPER_F0_HZ, -1)


class TestIndependenceThreshold:
    def test_paper_value(self, paper_relative_psd):
        """r_N > 95% holds for N < 281 (paper Sec. III-E)."""
        threshold = independence_threshold(paper_relative_psd, PAPER_F0_HZ, 0.95)
        assert threshold == pytest.approx(PAPER_INDEPENDENCE_THRESHOLD_N, abs=1.0)

    def test_threshold_is_consistent_with_ratio(self, paper_relative_psd):
        threshold = independence_threshold(paper_relative_psd, PAPER_F0_HZ, 0.95)
        just_below = thermal_ratio(paper_relative_psd, PAPER_F0_HZ, threshold * 0.999)
        just_above = thermal_ratio(paper_relative_psd, PAPER_F0_HZ, threshold * 1.001)
        assert just_below > 0.95 > just_above

    def test_stricter_requirement_gives_smaller_threshold(self, paper_relative_psd):
        loose = independence_threshold(paper_relative_psd, PAPER_F0_HZ, 0.90)
        strict = independence_threshold(paper_relative_psd, PAPER_F0_HZ, 0.99)
        assert strict < loose

    def test_no_flicker_gives_infinite_threshold(self):
        assert np.isinf(independence_threshold(PhaseNoisePSD(100.0, 0.0), 1e8))

    def test_invalid_ratio_requirement(self, paper_relative_psd):
        with pytest.raises(ValueError):
            independence_threshold(paper_relative_psd, PAPER_F0_HZ, 1.0)


class TestBudget:
    def test_budget_bundles_everything(self, paper_relative_psd):
        budget = independence_budget(paper_relative_psd, PAPER_F0_HZ, 0.95)
        assert budget.ratio_constant == pytest.approx(PAPER_RATIO_CONSTANT_K)
        assert budget.max_accumulation_length == pytest.approx(281.8, abs=1.0)
        assert budget.max_accumulation_time_s == pytest.approx(
            budget.max_accumulation_length / PAPER_F0_HZ
        )

    def test_budget_infinite_for_pure_thermal(self):
        budget = independence_budget(PhaseNoisePSD(100.0, 0.0), 1e8)
        assert np.isinf(budget.max_accumulation_time_s)
