"""Regression tests for previously untested sigma_N estimator edges.

Covers the ``overlapping=False`` stride/count semantics of
:func:`repro.core.sigma_n.s_n_realizations`, the minimum-sample error paths of
:func:`repro.core.sigma_n.sigma2_n_estimate`, and the 2-D (batched) input
behaviour of both estimators.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sigma_n import (
    accumulated_variance_curves,
    accumulation_weights,
    s_n_realizations,
    sigma2_n_estimate,
)


class TestNonOverlappingSemantics:
    def test_windows_start_at_multiples_of_2n(self, rng):
        """Non-overlapping realizations are the overlapping ones at stride 2N."""
        jitter = rng.normal(size=203)
        n = 7
        overlapping = s_n_realizations(jitter, n, overlapping=True)
        disjoint = s_n_realizations(jitter, n, overlapping=False)
        np.testing.assert_array_equal(disjoint, overlapping[:: 2 * n])

    @pytest.mark.parametrize(
        "size,n,expected",
        [
            (100, 10, 5),  # ceil((100 - 20 + 1) / 20)
            (39, 10, 1),  # fewer than four blocks -> a single disjoint window
            (40, 10, 2),  # 21 overlapping starts -> strides 0 and 20
            (100, 1, 50),  # ceil(99 / 2)
            (39, 3, 6),  # ceil((39 - 6 + 1) / 6)
        ],
    )
    def test_count_formula(self, rng, size, n, expected):
        jitter = rng.normal(size=size)
        values = s_n_realizations(jitter, n, overlapping=False)
        assert values.size == expected

    def test_values_match_direct_disjoint_sums(self, rng):
        """Each disjoint window equals the literal Eq. 4 weighted sum."""
        jitter = rng.normal(size=60)
        n = 5
        values = s_n_realizations(jitter, n, overlapping=False)
        weights = accumulation_weights(n)
        for index, value in enumerate(values):
            start = index * 2 * n
            direct = float(np.dot(weights, jitter[start : start + 2 * n]))
            assert value == pytest.approx(direct, rel=1e-12, abs=1e-18)

    def test_two_dimensional_stride(self, rng):
        records = rng.normal(size=(3, 100))
        batched = s_n_realizations(records, 10, overlapping=False)
        assert batched.shape == (3, 5)
        for row in range(3):
            np.testing.assert_array_equal(
                batched[row], s_n_realizations(records[row], 10, overlapping=False)
            )


class TestSigma2NEstimateErrorPaths:
    def test_single_realization_rejected(self, rng):
        """Exactly 2N samples yield one realization: not enough for a variance."""
        with pytest.raises(ValueError, match="at least two"):
            sigma2_n_estimate(rng.normal(size=4), 2)

    def test_single_disjoint_realization_rejected(self, rng):
        """19 samples give 10 overlapping but only 1 disjoint window for N=5."""
        jitter = rng.normal(size=19)
        assert sigma2_n_estimate(jitter, 5, overlapping=True) >= 0.0
        with pytest.raises(ValueError, match="at least two"):
            sigma2_n_estimate(jitter, 5, overlapping=False)

    def test_record_shorter_than_2n_rejected(self, rng):
        with pytest.raises(ValueError, match="need at least 2N"):
            sigma2_n_estimate(rng.normal(size=9), 5)

    def test_invalid_n_rejected(self, rng):
        with pytest.raises(ValueError, match="N must be >= 1"):
            sigma2_n_estimate(rng.normal(size=10), 0)

    def test_batched_error_paths_match_scalar(self, rng):
        records = rng.normal(size=(4, 4))
        with pytest.raises(ValueError, match="at least two"):
            sigma2_n_estimate(records, 2)
        with pytest.raises(ValueError, match="need at least 2N"):
            sigma2_n_estimate(rng.normal(size=(4, 9)), 5)


class TestTwoDimensionalEstimates:
    def test_batched_estimate_equals_per_row(self, rng):
        records = rng.normal(0.0, 1e-12, size=(5, 500))
        batched = sigma2_n_estimate(records, 6)
        assert isinstance(batched, np.ndarray) and batched.shape == (5,)
        for row in range(5):
            assert batched[row] == sigma2_n_estimate(records[row], 6)

    def test_scalar_input_still_returns_float(self, rng):
        value = sigma2_n_estimate(rng.normal(size=100), 3)
        assert isinstance(value, float)

    def test_three_dimensional_input_rejected(self, rng):
        with pytest.raises(ValueError, match="one- or two-dimensional"):
            s_n_realizations(rng.normal(size=(2, 3, 50)), 2)

    def test_batched_curves_invalid_f0(self, rng):
        records = rng.normal(size=(2, 200))
        with pytest.raises(ValueError):
            accumulated_variance_curves(records, 0.0)
        with pytest.raises(ValueError):
            accumulated_variance_curves(records, np.array([1e8, 1e8, 1e8]))

    def test_batched_curves_too_short_record(self, rng):
        with pytest.raises(ValueError, match="record too short"):
            accumulated_variance_curves(rng.normal(size=(2, 4)), 1e8, n_sweep=[100])
