"""Unit tests for the Eq. 11 fit (recovery of b_th and b_fl from sigma^2_N data)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fitting import (
    bootstrap_fit,
    coefficients_to_phase_noise,
    fit_linear_only,
    fit_sigma2_n_curve,
)
from repro.core.sigma_n import AccumulatedVarianceCurve, AccumulatedVariancePoint
from repro.core.theory import sigma2_n_closed_form
from repro.phase.psd import PhaseNoisePSD


def synthetic_curve(
    b_thermal: float,
    b_flicker: float,
    f0: float = 103e6,
    n_values=(1, 3, 10, 30, 100, 300, 1000, 3000, 10000),
    noise_fraction: float = 0.0,
    seed: int = 0,
) -> AccumulatedVarianceCurve:
    """Build a curve directly from the closed form, optionally with noise."""
    psd = PhaseNoisePSD(b_thermal, b_flicker)
    rng = np.random.default_rng(seed)
    points = []
    for n in n_values:
        value = float(sigma2_n_closed_form(psd, f0, n))
        if noise_fraction > 0.0:
            value *= 1.0 + noise_fraction * rng.standard_normal()
        points.append(
            AccumulatedVariancePoint(
                n_accumulations=int(n),
                # Constant *effective* realization count across N (as a counter
                # campaign with a fixed number of windows per point would give),
                # which matches the constant relative noise injected above.
                sigma2_n_s2=max(value, 0.0),
                n_realizations=800 * int(n),
            )
        )
    return AccumulatedVarianceCurve(points=points, f0_hz=f0)


class TestCoefficientConversion:
    def test_round_trip(self):
        b_th, b_fl = coefficients_to_phase_noise(
            2.0 * 276.0 / (103e6) ** 3, 8.0 * np.log(2.0) * 1.9e6 / (103e6) ** 4, 103e6
        )
        assert b_th == pytest.approx(276.0)
        assert b_fl == pytest.approx(1.9e6)

    def test_negative_inputs_clipped(self):
        b_th, b_fl = coefficients_to_phase_noise(-1.0, -1.0, 1e8)
        assert b_th == 0.0 and b_fl == 0.0

    def test_invalid_f0(self):
        with pytest.raises(ValueError):
            coefficients_to_phase_noise(1.0, 1.0, 0.0)


class TestExactRecovery:
    def test_noiseless_fit_recovers_both_coefficients(self):
        curve = synthetic_curve(276.04, 1.9e6)
        fit = fit_sigma2_n_curve(curve)
        assert fit.b_thermal_hz == pytest.approx(276.04, rel=1e-6)
        assert fit.b_flicker_hz2 == pytest.approx(1.9e6, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-9)

    def test_thermal_only_curve_gives_zero_flicker(self):
        curve = synthetic_curve(300.0, 0.0)
        fit = fit_sigma2_n_curve(curve)
        assert fit.b_thermal_hz == pytest.approx(300.0, rel=1e-6)
        assert fit.b_flicker_hz2 == pytest.approx(0.0, abs=1e-3)

    def test_flicker_only_curve_gives_zero_thermal(self):
        curve = synthetic_curve(0.0, 2e6)
        fit = fit_sigma2_n_curve(curve)
        assert fit.b_flicker_hz2 == pytest.approx(2e6, rel=1e-6)
        assert fit.b_thermal_hz == pytest.approx(0.0, abs=1e-6)

    def test_noisy_fit_recovers_within_tolerance(self):
        curve = synthetic_curve(276.04, 1.9e6, noise_fraction=0.05, seed=3)
        fit = fit_sigma2_n_curve(curve)
        assert fit.b_thermal_hz == pytest.approx(276.04, rel=0.15)
        assert fit.b_flicker_hz2 == pytest.approx(1.9e6, rel=0.35)

    def test_derived_quantities(self):
        curve = synthetic_curve(276.04, 1.9e6)
        fit = fit_sigma2_n_curve(curve)
        assert fit.thermal_jitter_std_s == pytest.approx(15.89e-12, rel=1e-3)
        assert fit.thermal_jitter_ratio == pytest.approx(1.637e-3, rel=1e-2)
        assert fit.normalized_linear_coefficient == pytest.approx(5.36e-6, rel=1e-2)
        assert fit.phase_noise_psd.b_thermal_hz == fit.b_thermal_hz

    def test_predict_reproduces_input(self):
        curve = synthetic_curve(276.04, 1.9e6)
        fit = fit_sigma2_n_curve(curve)
        np.testing.assert_allclose(
            fit.predict(curve.n_values), curve.sigma2_values_s2, rtol=1e-6
        )

    def test_unweighted_fit_also_recovers(self):
        curve = synthetic_curve(276.04, 1.9e6)
        fit = fit_sigma2_n_curve(curve, weighted=False)
        assert fit.b_thermal_hz == pytest.approx(276.04, rel=1e-6)

    def test_single_point_rejected(self):
        curve = synthetic_curve(276.04, 1.9e6, n_values=(10,))
        with pytest.raises(ValueError):
            fit_sigma2_n_curve(curve)


class TestLinearOnlyFit:
    def test_linear_fit_has_no_quadratic_term(self):
        curve = synthetic_curve(276.04, 1.9e6)
        fit = fit_linear_only(curve)
        assert fit.quadratic_coefficient == 0.0
        assert fit.b_flicker_hz2 == 0.0

    def test_linear_fit_overestimates_thermal_when_flicker_present(self):
        """Forcing the independence model onto flicker-laden data inflates b_th."""
        curve = synthetic_curve(276.04, 1.9e6)
        linear = fit_linear_only(curve)
        full = fit_sigma2_n_curve(curve)
        assert linear.b_thermal_hz > full.b_thermal_hz

    def test_linear_fit_is_exact_for_thermal_only_data(self):
        curve = synthetic_curve(300.0, 0.0)
        fit = fit_linear_only(curve)
        assert fit.b_thermal_hz == pytest.approx(300.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-9)


class TestBootstrap:
    def test_intervals_cover_true_values(self):
        curve = synthetic_curve(276.04, 1.9e6, noise_fraction=0.05, seed=11)
        (b_th_low, b_th_high), (b_fl_low, b_fl_high) = bootstrap_fit(
            curve, n_resamples=100, rng=np.random.default_rng(1)
        )
        assert b_th_low < 276.04 < b_th_high
        assert b_fl_low < 1.9e6 * 1.6
        assert b_fl_high > 1.9e6 * 0.4

    def test_bootstrap_validation(self):
        curve = synthetic_curve(276.04, 1.9e6)
        with pytest.raises(ValueError):
            bootstrap_fit(curve, n_resamples=2)
        with pytest.raises(ValueError):
            bootstrap_fit(curve, confidence_level=2.0)
