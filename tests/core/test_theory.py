"""Unit tests for the theoretical sigma^2_N (Eq. 9 integral vs Eq. 11 closed form)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.theory import (
    crossover_accumulation_length,
    decompose_sigma2_n,
    sigma2_n_closed_form,
    sigma2_n_flicker,
    sigma2_n_integral,
    sigma2_n_thermal,
)
from repro.paper import (
    PAPER_B_FLICKER_HZ2,
    PAPER_B_THERMAL_HZ,
    PAPER_F0_HZ,
    PAPER_RATIO_CONSTANT_K,
)
from repro.phase.psd import PhaseNoisePSD


class TestClosedForm:
    def test_thermal_term_is_linear_in_n(self):
        single = sigma2_n_thermal(276.0, 103e6, 1)
        assert sigma2_n_thermal(276.0, 103e6, 10) == pytest.approx(10 * single)

    def test_flicker_term_is_quadratic_in_n(self):
        single = sigma2_n_flicker(1.9e6, 103e6, 1)
        assert sigma2_n_flicker(1.9e6, 103e6, 10) == pytest.approx(100 * single)

    def test_thermal_term_formula(self):
        """sigma^2_N,th = 2 b_th N / f0^3."""
        assert sigma2_n_thermal(276.04, 103e6, 7) == pytest.approx(
            2.0 * 276.04 * 7 / (103e6) ** 3
        )

    def test_flicker_term_formula(self):
        """sigma^2_N,fl = 8 ln2 b_fl N^2 / f0^4."""
        assert sigma2_n_flicker(1.9e6, 103e6, 7) == pytest.approx(
            8.0 * np.log(2.0) * 1.9e6 * 49 / (103e6) ** 4
        )

    def test_total_is_sum(self):
        psd = PhaseNoisePSD(276.0, 1.9e6)
        total = sigma2_n_closed_form(psd, 103e6, 25)
        assert total == pytest.approx(
            sigma2_n_thermal(276.0, 103e6, 25) + sigma2_n_flicker(1.9e6, 103e6, 25)
        )

    def test_array_input(self):
        psd = PhaseNoisePSD(276.0, 1.9e6)
        values = sigma2_n_closed_form(psd, 103e6, np.array([1, 10, 100]))
        assert values.shape == (3,)
        assert np.all(np.diff(values) > 0.0)

    def test_paper_normalised_slope(self):
        """f0^2 sigma^2_N,th / N = 5.36e-6 for the paper's fit (Sec. IV-A/B)."""
        slope = sigma2_n_thermal(PAPER_B_THERMAL_HZ, PAPER_F0_HZ, 1) * PAPER_F0_HZ**2
        assert slope == pytest.approx(5.36e-6, rel=2e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            sigma2_n_thermal(-1.0, 1e8, 1)
        with pytest.raises(ValueError):
            sigma2_n_thermal(1.0, 0.0, 1)
        with pytest.raises(ValueError):
            sigma2_n_thermal(1.0, 1e8, 0)


class TestIntegralConsistency:
    @pytest.mark.parametrize("n", [1, 3, 10, 100, 1000])
    def test_integral_matches_closed_form_paper_psd(self, n):
        """The Eq. 9 Wiener-Khintchine integral equals the Eq. 11 closed form."""
        psd = PhaseNoisePSD(PAPER_B_THERMAL_HZ, PAPER_B_FLICKER_HZ2)
        closed = float(sigma2_n_closed_form(psd, PAPER_F0_HZ, n))
        integral = sigma2_n_integral(psd, PAPER_F0_HZ, n)
        assert integral == pytest.approx(closed, rel=1e-3)

    def test_integral_matches_thermal_only(self):
        psd = PhaseNoisePSD(100.0, 0.0)
        assert sigma2_n_integral(psd, 50e6, 20) == pytest.approx(
            float(sigma2_n_closed_form(psd, 50e6, 20)), rel=1e-3
        )

    def test_integral_matches_flicker_only(self):
        psd = PhaseNoisePSD(0.0, 1e6)
        assert sigma2_n_integral(psd, 50e6, 20) == pytest.approx(
            float(sigma2_n_closed_form(psd, 50e6, 20)), rel=1e-3
        )

    def test_integral_accepts_callable_psd(self):
        """A user-supplied S_phi(f) callable is integrated numerically."""
        psd = PhaseNoisePSD(100.0, 1e5)
        integral = sigma2_n_integral(lambda f: psd(f), 50e6, 10)
        assert integral == pytest.approx(
            float(sigma2_n_closed_form(psd, 50e6, 10)), rel=5e-3
        )

    def test_integral_validation(self):
        with pytest.raises(ValueError):
            sigma2_n_integral(PhaseNoisePSD(1.0, 1.0), 0.0, 1)
        with pytest.raises(ValueError):
            sigma2_n_integral(PhaseNoisePSD(1.0, 1.0), 1e8, 0)


class TestDecompositionAndCrossover:
    def test_decomposition_fractions(self):
        psd = PhaseNoisePSD(PAPER_B_THERMAL_HZ, PAPER_B_FLICKER_HZ2)
        decomposition = decompose_sigma2_n(psd, PAPER_F0_HZ, 100)
        assert decomposition.total_s2 == pytest.approx(
            decomposition.thermal_s2 + decomposition.flicker_s2
        )
        assert 0.9 < decomposition.thermal_fraction < 1.0

    def test_thermal_fraction_is_one_without_noise(self):
        decomposition = decompose_sigma2_n(PhaseNoisePSD(0.0, 0.0), 1e8, 10)
        assert decomposition.thermal_fraction == 1.0

    def test_crossover_equals_ratio_constant(self):
        """The N where flicker overtakes thermal is exactly K (paper: 5354)."""
        psd = PhaseNoisePSD(PAPER_B_THERMAL_HZ, PAPER_B_FLICKER_HZ2)
        crossover = crossover_accumulation_length(psd, PAPER_F0_HZ)
        assert crossover == pytest.approx(PAPER_RATIO_CONSTANT_K, rel=1e-9)

    def test_crossover_infinite_without_flicker(self):
        assert np.isinf(
            crossover_accumulation_length(PhaseNoisePSD(100.0, 0.0), 1e8)
        )

    def test_terms_equal_at_crossover(self):
        psd = PhaseNoisePSD(300.0, 2e6)
        crossover = crossover_accumulation_length(psd, 1e8)
        thermal = sigma2_n_thermal(300.0, 1e8, crossover)
        flicker = sigma2_n_flicker(2e6, 1e8, crossover)
        assert thermal == pytest.approx(flicker, rel=1e-9)
