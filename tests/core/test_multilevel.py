"""Tests for the end-to-end multilevel model (Fig. 3 pipeline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multilevel import MultilevelModel
from repro.core.theory import sigma2_n_closed_form
from repro.noise.technology import get_node
from repro.paper import PAPER_B_FLICKER_HZ2, PAPER_B_THERMAL_HZ, PAPER_F0_HZ


@pytest.fixture(scope="module")
def paper_model() -> MultilevelModel:
    return MultilevelModel.from_phase_noise(
        PAPER_F0_HZ, PAPER_B_THERMAL_HZ, PAPER_B_FLICKER_HZ2
    )


class TestCalibratedModel:
    def test_thermal_jitter(self, paper_model):
        assert paper_model.thermal_jitter_std_s == pytest.approx(15.89e-12, rel=1e-3)

    def test_ratio_constant(self, paper_model):
        assert paper_model.ratio_constant == pytest.approx(5354.0, rel=1e-3)

    def test_sigma2_n_matches_theory(self, paper_model):
        n = np.array([1, 10, 100])
        np.testing.assert_allclose(
            paper_model.sigma2_n(n),
            sigma2_n_closed_form(paper_model.psd, PAPER_F0_HZ, n),
        )

    def test_independence_threshold(self, paper_model):
        assert paper_model.independence_threshold(0.95) == pytest.approx(281.8, abs=1.0)

    def test_thermal_ratio_decreases(self, paper_model):
        assert paper_model.thermal_ratio(10) > paper_model.thermal_ratio(10_000)

    def test_jitter_parameters_consistency(self, paper_model):
        parameters = paper_model.jitter_parameters(500)
        assert parameters.total_variance_s2 == pytest.approx(
            parameters.thermal_variance_s2 / parameters.thermal_ratio
        )
        assert parameters.accumulation_length == 500

    def test_jitter_parameters_validation(self, paper_model):
        with pytest.raises(ValueError):
            paper_model.jitter_parameters(0)

    def test_accumulation_for_target_thermal_jitter(self, paper_model):
        target = 0.5 / PAPER_F0_HZ  # half a period of accumulated thermal jitter
        n = paper_model.accumulation_for_target_thermal_jitter(target)
        accumulated_std = np.sqrt(
            2.0 * n * paper_model.psd.thermal_period_jitter_variance(PAPER_F0_HZ)
        )
        assert accumulated_std >= target
        assert n > 1000

    def test_target_jitter_validation(self, paper_model):
        with pytest.raises(ValueError):
            paper_model.accumulation_for_target_thermal_jitter(0.0)
        no_thermal = MultilevelModel.from_phase_noise(1e8, 0.0, 1e6)
        with pytest.raises(ValueError):
            no_thermal.accumulation_for_target_thermal_jitter(1e-12)

    def test_repr(self, paper_model):
        assert "MultilevelModel" in repr(paper_model)


class TestBottomUpModel:
    def test_from_technology(self):
        model = MultilevelModel.from_technology("65nm", 5)
        assert model.f0_hz > 1e8
        assert model.psd.b_thermal_hz > 0.0
        assert model.psd.b_flicker_hz2 > 0.0

    def test_from_technology_object(self):
        node = get_node("90nm")
        model = MultilevelModel.from_technology(node, 3)
        assert model.ratio_constant > 0.0

    def test_scaling_shrinks_independence_threshold(self):
        """The paper's conclusion: smaller nodes -> flicker dominates sooner."""
        old = MultilevelModel.from_technology("130nm", 5)
        new = MultilevelModel.from_technology("28nm", 5)
        assert new.independence_threshold(0.95) < old.independence_threshold(0.95)

    def test_invalid_f0(self):
        from repro.phase.psd import PhaseNoisePSD

        with pytest.raises(ValueError):
            MultilevelModel(0.0, PhaseNoisePSD(1.0, 1.0))
