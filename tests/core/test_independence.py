"""Tests for the independence diagnostics (Bienayme linearity test, ACF tests).

These tests encode the paper's central experimental claim: thermal-only jitter
looks mutually independent (sigma^2_N linear in N), while the full thermal +
flicker process does not once N is large.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.independence import (
    assess_independence,
    bienayme_linearity_test,
)
from repro.core.sigma_n import accumulated_variance_curve


class TestBienaymeLinearityTest:
    def test_thermal_only_jitter_is_declared_independent(
        self, thermal_only_jitter_record, paper_f0
    ):
        curve = accumulated_variance_curve(thermal_only_jitter_record, paper_f0)
        result = bienayme_linearity_test(curve)
        assert result.independent
        assert result.quadratic_fraction_at_max_n < 0.1

    def test_paper_process_is_declared_dependent(self, paper_curve):
        """With flicker noise the sigma^2_N curve bends upward: dependence."""
        result = bienayme_linearity_test(paper_curve)
        assert not result.independent
        assert result.quadratic_fraction_at_max_n > 0.3
        assert result.improvement_ratio > 1.0

    def test_full_fit_beats_linear_fit_on_paper_data(self, paper_curve):
        result = bienayme_linearity_test(paper_curve)
        assert result.full_fit.r_squared >= result.linear_fit.r_squared

    def test_threshold_validation(self, paper_curve):
        with pytest.raises(ValueError):
            bienayme_linearity_test(paper_curve, quadratic_fraction_threshold=0.0)

    def test_max_n_recorded(self, paper_curve):
        result = bienayme_linearity_test(paper_curve)
        assert result.max_n == int(np.max(paper_curve.n_values))


class TestAssessIndependence:
    def test_thermal_only_report(self, thermal_only_jitter_record, paper_f0):
        report = assess_independence(
            thermal_only_jitter_record[:60_000], paper_f0
        )
        assert report.jitter_realizations_independent
        assert np.isinf(report.max_independent_accumulation) or (
            report.max_independent_accumulation > 1e4
        )

    def test_paper_process_report(self, paper_jitter_record, paper_f0):
        report = assess_independence(paper_jitter_record[:100_000], paper_f0)
        assert not report.jitter_realizations_independent
        # The usable accumulation range must be finite and of the order of the
        # paper's threshold (281), allowing for estimation error.
        assert 50 < report.max_independent_accumulation < 3000

    def test_ljung_box_detects_strong_flicker_correlation(self, paper_f0):
        """The direct ACF test only triggers when flicker is strong at lag 1.

        With the paper's parameters (K = 5354) the per-period correlation is
        tiny — which is exactly why the accumulated-variance analysis is
        needed — so this test uses a flicker-dominated oscillator instead.
        """
        from repro.phase import PeriodJitterSynthesizer, PhaseNoisePSD

        psd = PhaseNoisePSD(b_thermal_hz=276.0, b_flicker_hz2=2e8)
        jitter = PeriodJitterSynthesizer(
            paper_f0, psd, rng=np.random.default_rng(3)
        ).jitter(50_000)
        report = assess_independence(jitter, paper_f0)
        assert report.ljung_box.p_value < 0.01
        assert not report.jitter_realizations_independent

    def test_summary_states_verdict(self, paper_jitter_record, paper_f0):
        report = assess_independence(paper_jitter_record[:50_000], paper_f0)
        assert "NOT mutually independent" in report.summary()

    def test_summary_for_independent_data(self, thermal_only_jitter_record, paper_f0):
        report = assess_independence(thermal_only_jitter_record[:50_000], paper_f0)
        assert "consistent with mutual independence" in report.summary()
