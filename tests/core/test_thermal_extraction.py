"""Tests for the Section IV thermal-noise extraction pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.thermal_extraction import (
    extract_thermal_noise,
    extract_thermal_noise_from_curve,
)
from repro.paper import PAPER_B_THERMAL_HZ, PAPER_RATIO_CONSTANT_K


class TestExtractionOnSyntheticData:
    def test_recovers_paper_thermal_jitter(self, paper_jitter_record, paper_f0):
        """The pipeline applied to the paper-calibrated virtual oscillator must
        recover sigma_th ~= 15.89 ps and b_th ~= 276 Hz (Sec. IV-B)."""
        report = extract_thermal_noise(paper_jitter_record, paper_f0)
        assert report.b_thermal_hz == pytest.approx(PAPER_B_THERMAL_HZ, rel=0.05)
        assert report.thermal_jitter_std_ps == pytest.approx(15.89, rel=0.03)
        assert report.jitter_ratio_permille == pytest.approx(1.6, rel=0.06)

    def test_ratio_constant_order_of_magnitude(self, paper_jitter_record, paper_f0):
        """K is harder to pin down from a finite record, but must be in the
        right ballpark (paper: 5354)."""
        report = extract_thermal_noise(paper_jitter_record, paper_f0)
        assert PAPER_RATIO_CONSTANT_K / 3 < report.ratio_constant < PAPER_RATIO_CONSTANT_K * 3

    def test_independence_threshold_consistent_with_k(self, paper_jitter_record, paper_f0):
        report = extract_thermal_noise(paper_jitter_record, paper_f0)
        expected = report.ratio_constant * (1 - 0.95) / 0.95
        assert report.independence_threshold_n == pytest.approx(expected, rel=1e-9)

    def test_thermal_only_record_reports_infinite_threshold(
        self, thermal_only_jitter_record, paper_f0
    ):
        report = extract_thermal_noise(thermal_only_jitter_record, paper_f0)
        assert report.b_thermal_hz == pytest.approx(276.04, rel=0.05)
        # Essentially no flicker should be detected.
        assert report.ratio_constant > 10 * PAPER_RATIO_CONSTANT_K

    def test_report_from_curve_equals_report_from_record(
        self, paper_jitter_record, paper_curve, paper_f0
    ):
        from_record = extract_thermal_noise(paper_jitter_record, paper_f0)
        from_curve = extract_thermal_noise_from_curve(paper_curve)
        assert from_record.b_thermal_hz == pytest.approx(from_curve.b_thermal_hz)
        assert from_record.b_flicker_hz2 == pytest.approx(from_curve.b_flicker_hz2)

    def test_confidence_intervals_cover_estimate(self, paper_curve):
        report = extract_thermal_noise_from_curve(
            paper_curve,
            with_confidence_intervals=True,
            rng=np.random.default_rng(5),
        )
        low, high = report.b_thermal_ci_hz
        assert low <= report.b_thermal_hz <= high

    def test_thermal_ratio_accessor(self, paper_curve):
        report = extract_thermal_noise_from_curve(paper_curve)
        assert report.thermal_ratio_at(1) > report.thermal_ratio_at(10_000)

    def test_summary_mentions_key_figures(self, paper_curve):
        report = extract_thermal_noise_from_curve(paper_curve)
        text = report.summary()
        assert "b_th" in text
        assert "sigma_th" in text
        assert "permille" in text
        assert "R^2" in text

    def test_summary_includes_ci_when_present(self, paper_curve):
        report = extract_thermal_noise_from_curve(
            paper_curve,
            with_confidence_intervals=True,
            rng=np.random.default_rng(6),
        )
        assert "CI" in report.summary()

    def test_custom_sweep(self, paper_jitter_record, paper_f0):
        report = extract_thermal_noise(
            paper_jitter_record, paper_f0, n_sweep=[1, 10, 100, 1000]
        )
        assert report.fit.n_points == 4
